"""Unit tests for the distribution statistics helpers."""

import pytest

from repro.errors import EvaluationError
from repro.eval.stats import (
    accuracy_by_int,
    bucketize_accuracy,
    coverage_by_confidence_threshold,
    probability_histogram,
    skew_summary,
    triple_support,
    truth_count_distribution,
)
from repro.extract.records import ExtractionRecord
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(name):
    return Triple("/m/1", "t/t/p", StringValue(name))


def rec(obj, extractor, url, confidence=None):
    return ExtractionRecord(
        triple=t(obj),
        extractor=extractor,
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
        confidence=confidence,
    )


class TestSkewSummary:
    def test_basic(self):
        summary = skew_summary([1, 1, 1, 1, 96])
        assert summary["mean"] == pytest.approx(20.0)
        assert summary["median"] == pytest.approx(1.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 96.0

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            skew_summary([])


class TestAccuracyByInt:
    def test_grouping(self):
        pairs = [(1, True), (1, False), (2, True), (2, True)]
        points = accuracy_by_int(pairs)
        assert [(p.x, p.accuracy) for p in points] == [(1.0, 0.5), (2.0, 1.0)]

    def test_max_exact_folds_tail(self):
        pairs = [(1, True), (5, False), (9, True), (100, True)]
        points = accuracy_by_int(pairs, max_exact=5)
        xs = [p.x for p in points]
        assert xs == [1.0, 5.0]
        folded = next(p for p in points if p.x == 5.0)
        assert folded.n == 3


class TestBucketize:
    def test_values_land_in_last_reached_edge(self):
        points = bucketize_accuracy(
            [(0.05, True), (0.15, False), (0.95, True)], edges=[0.0, 0.1, 0.9]
        )
        assert [(p.x, p.n) for p in points] == [(0.0, 1), (0.1, 1), (0.9, 1)]

    def test_empty_edges_rejected(self):
        with pytest.raises(EvaluationError):
            bucketize_accuracy([(0.5, True)], edges=[])


class TestHistograms:
    def test_probability_histogram_sums_to_one(self):
        probabilities = {t(f"x{i}"): i / 10 for i in range(11)}
        histogram = probability_histogram(probabilities, n_buckets=10)
        assert sum(share for _x, share in histogram) == pytest.approx(1.0)

    def test_probability_one_in_last_bucket(self):
        histogram = probability_histogram({t("a"): 1.0}, n_buckets=10)
        assert histogram[-1][1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            probability_histogram({})

    def test_truth_count_distribution(self):
        dist = dict(truth_count_distribution([0, 0, 0, 1, 2, 7]))
        assert dist["0"] == pytest.approx(0.5)
        assert dist["1"] == pytest.approx(1 / 6)
        assert dist[">5"] == pytest.approx(1 / 6)

    def test_truth_count_empty_rejected(self):
        with pytest.raises(EvaluationError):
            truth_count_distribution([])


class TestTripleSupport:
    def test_counts(self):
        records = [
            rec("a", "E1", "http://s.org/p"),
            rec("a", "E1", "http://s.org/q"),
            rec("a", "E2", "http://s.org/p"),
        ]
        support = triple_support(records)[t("a")]
        assert support == {"extractors": 2, "urls": 2, "provenances": 3}


class TestCoverageByThreshold:
    def test_monotone_decreasing(self):
        records = [
            rec(f"x{i}", "E1", "http://s.org/p", confidence=i / 10) for i in range(11)
        ]
        points = coverage_by_confidence_threshold(records)
        coverages = [c for _t, c in points]
        assert coverages == sorted(coverages, reverse=True)

    def test_triple_survives_via_any_record(self):
        records = [
            rec("a", "E1", "http://s.org/p", confidence=0.05),
            rec("a", "E2", "http://s.org/q", confidence=0.95),
        ]
        points = dict(coverage_by_confidence_threshold(records))
        assert points[0.9] == pytest.approx(1.0)

    def test_no_confidence_counts_as_unfiltered(self):
        records = [rec("a", "E1", "http://s.org/p", confidence=None)]
        points = dict(coverage_by_confidence_threshold(records))
        assert points[1.0] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            coverage_by_confidence_threshold([])
