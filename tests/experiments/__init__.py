"""Test package: experiments (package __init__ so duplicate basenames import distinctly)."""
