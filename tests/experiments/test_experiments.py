"""Every experiment runs on the tiny scenario and reports sane data."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment

ALL_IDS = [
    "table1", "table2", "table3",
    "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert experiment_ids() == ALL_IDS

    def test_unknown_id_raises(self, tiny_scenario):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", tiny_scenario)

    def test_registry_mapping_protocol(self):
        assert "fig9" in EXPERIMENTS
        assert len(EXPERIMENTS) == len(ALL_IDS)


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_experiment_runs_and_renders(tiny_scenario, experiment_id):
    result = run_experiment(experiment_id, tiny_scenario)
    assert result.experiment_id == experiment_id
    assert result.title
    assert result.text.strip()
    assert result.data


class TestSpecificOutputs:
    def test_table1_counts_consistent(self, tiny_scenario):
        data = run_experiment("table1", tiny_scenario).data
        counts = data["counts"]
        assert counts["#Triples (unique)"] <= counts["#Extracted records"]
        assert counts["#Data-items"] <= counts["#Triples (unique)"]

    def test_table1_skew_median_below_mean(self, tiny_scenario):
        skews = run_experiment("table1", tiny_scenario).data["skews"]
        assert skews["#Triples/entity"]["median"] <= skews["#Triples/entity"]["mean"]

    def test_table2_reports_all_running_extractors(self, tiny_scenario):
        data = run_experiment("table2", tiny_scenario).data
        assert set(data) == {p.name for p in tiny_scenario.config.extractors}

    def test_table2_patterns_only_for_patterned(self, tiny_scenario):
        data = run_experiment("table2", tiny_scenario).data
        assert data["TXT1"]["patterns"] is not None
        assert data["DOM2"]["patterns"] is None
        assert data["TBL1"]["patterns"] is None

    def test_table3_majority_non_functional(self, tiny_scenario):
        data = run_experiment("table3", tiny_scenario).data
        assert (
            data["non_functional"]["predicates"] > data["functional"]["predicates"]
        )

    def test_fig3_dom_dominates(self, tiny_scenario):
        data = run_experiment("fig3", tiny_scenario).data
        assert data["contributions"]["DOM"] == max(data["contributions"].values())

    def test_fig3_overlaps_small(self, tiny_scenario):
        data = run_experiment("fig3", tiny_scenario).data
        for pair, overlap in data["overlaps"].items():
            a, b = pair.split("&")
            assert overlap <= min(
                data["contributions"][a], data["contributions"][b]
            )

    def test_fig6_accuracy_rises_with_extractors(self, tiny_scenario):
        points = run_experiment("fig6", tiny_scenario).data["points"]
        lows = [a for x, _n, a in points if x <= 2]
        highs = [a for x, _n, a in points if x >= 3]
        if lows and highs:
            assert max(highs) > min(lows)

    def test_fig9_reports_five_methods(self, tiny_scenario):
        data = run_experiment("fig9", tiny_scenario).data
        assert set(data) == {
            "VOTE",
            "ACCU",
            "POPACCU",
            "POPACCU (only ext)",
            "POPACCU (only src)",
        }

    def test_fig11_bycov_leaves_unpredicted(self, tiny_scenario):
        data = run_experiment("fig11", tiny_scenario).data
        assert data["BYCOV"]["predicted_share"] < 1.0
        assert data["NOFILTERING"]["predicted_share"] == pytest.approx(1.0)

    def test_fig12_more_gold_not_worse(self, tiny_scenario):
        data = run_experiment("fig12", tiny_scenario).data
        assert data["100%"]["auc_pr"] >= data["10%"]["auc_pr"] - 0.05

    def test_fig13_final_beats_baseline(self, tiny_scenario):
        data = run_experiment("fig13", tiny_scenario).data
        assert data["+GoldStandard"]["auc_pr"] > data["POPACCU"]["auc_pr"]
        assert data["+GoldStandard"]["wdev"] < data["POPACCU"]["wdev"]

    def test_fig14_round_table_lengths(self, tiny_scenario):
        data = run_experiment("fig14", tiny_scenario).data
        assert len(data["per_round_wdev"]["DefaultAccu"]) == 5

    def test_fig15_popaccu_plus_best(self, tiny_scenario):
        data = run_experiment("fig15", tiny_scenario).data
        assert data["POPACCU+"]["auc_pr"] == max(
            d["auc_pr"] for d in data.values()
        )

    def test_fig16_mass_sums_to_one(self, tiny_scenario):
        histogram = run_experiment("fig16", tiny_scenario).data["histogram"]
        assert sum(share for _x, share in histogram) == pytest.approx(1.0)

    def test_fig17_categories_populated(self, tiny_scenario):
        data = run_experiment("fig17", tiny_scenario).data
        assert data["n_false_positives"] > 0
        assert data["fp_categories"]

    def test_fig19_pair_count(self, tiny_scenario):
        data = run_experiment("fig19", tiny_scenario).data
        n_extractors = len({r.extractor for r in tiny_scenario.records})
        assert len(data["pairs"]) == n_extractors * (n_extractors - 1) // 2

    def test_fig20_distribution_sums_to_one(self, tiny_scenario):
        distribution = run_experiment("fig20", tiny_scenario).data["distribution"]
        assert sum(share for _k, share in distribution) == pytest.approx(1.0)

    def test_fig22_coverage_decreasing(self, tiny_scenario):
        points = run_experiment("fig22", tiny_scenario).data["points"]
        coverages = [c for _t, c in points]
        assert coverages == sorted(coverages, reverse=True)
