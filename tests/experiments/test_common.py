"""Unit tests for the shared experiment helpers."""

import pytest

from repro.experiments.common import (
    Metrics,
    metrics_for,
    standard_fusion_results,
    unique_triple_accuracy,
)
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(name):
    return Triple("/m/1", "t/t/p", StringValue(name))


class TestStandardResults:
    def test_five_methods(self, tiny_scenario):
        results = standard_fusion_results(tiny_scenario)
        assert set(results) == {
            "VOTE",
            "ACCU",
            "POPACCU",
            "POPACCU+(unsup)",
            "POPACCU+",
        }

    def test_cached_on_scenario(self, tiny_scenario):
        first = standard_fusion_results(tiny_scenario)
        second = standard_fusion_results(tiny_scenario)
        assert first is second


class TestMetricsFor:
    def test_rows(self):
        gold = {t("a"): True, t("b"): False}
        metrics = metrics_for({t("a"): 0.9, t("b"): 0.1}, gold)
        assert isinstance(metrics, Metrics)
        dev, wdev, auc = metrics.row()
        assert 0 <= dev <= 1 and 0 <= wdev <= 1 and 0 <= auc <= 1

    def test_oracle_scores_perfectly(self):
        gold = {t(f"x{i}"): i % 2 == 0 for i in range(20)}
        oracle = {triple: 1.0 if label else 0.0 for triple, label in gold.items()}
        metrics = metrics_for(oracle, gold)
        assert metrics.wdev == pytest.approx(0.0)
        assert metrics.auc_pr == pytest.approx(1.0)


class TestUniqueTripleAccuracy:
    def test_counts_only_labelled(self):
        gold = {t("a"): True}
        n, accuracy = unique_triple_accuracy([t("a"), t("b")], gold)
        assert n == 1
        assert accuracy == pytest.approx(1.0)

    def test_no_labels(self):
        n, accuracy = unique_triple_accuracy([t("zz")], {})
        assert n == 0
        assert accuracy is None

    def test_mixed(self):
        gold = {t("a"): True, t("b"): False}
        _n, accuracy = unique_triple_accuracy([t("a"), t("b")], gold)
        assert accuracy == pytest.approx(0.5)
