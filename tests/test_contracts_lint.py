"""The contract lint as a tier-1 test: the repo must stay clean.

Mirrors ``tests/test_docs.py``: the same checks CI runs as the
``static-analysis`` lane fail the ordinary test run too, so a stray
``random.*`` call or an unpaired ``install_state`` never survives to a
parity test three PRs later.  Also pins the entry points themselves
(``tools/contracts_lint.py``, ``repro-kf lint``) and, when ``ruff`` is
on PATH, the generic-lint configuration.
"""

from __future__ import annotations

import importlib.util
import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRepoIsClean:
    def test_contract_lint_passes_on_the_repo(self):
        result = run_lint(REPO_ROOT)
        assert result.findings == (), "\n".join(
            finding.format() for finding in result.findings
        )

    def test_baseline_is_empty(self):
        """The committed baseline must stay empty: new findings are fixed
        or pragma'd with a reason, never silently baselined."""
        data = json.loads(
            (REPO_ROOT / "tools" / "contracts_lint_baseline.json").read_text()
        )
        assert data["suppressions"] == []

    def test_all_six_rules_ran(self):
        result = run_lint(REPO_ROOT)
        assert result.rules == (
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
            "DET006",
        )
        # The scan actually covered the package, not an empty dir.
        assert result.n_files > 50


class TestEntryPoints:
    def test_tools_entrypoint_returns_zero(self):
        spec = importlib.util.spec_from_file_location(
            "contracts_lint", REPO_ROOT / "tools" / "contracts_lint.py"
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules.setdefault("contracts_lint", module)
        spec.loader.exec_module(module)
        assert module.main() == 0

    def test_cli_lint_subcommand_json(self):
        from repro.cli import main

        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(["lint", "--root", str(REPO_ROOT), "--format", "json"])
        assert code == 0
        data = json.loads(buffer.getvalue())
        assert data["ok"] is True
        assert data["findings"] == []


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
class TestRuff:
    def test_ruff_check_passes(self):
        proc = subprocess.run(
            ["ruff", "check", "."],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
