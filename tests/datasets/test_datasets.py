"""Unit tests for profiles, presets and the scenario builder."""

import pytest

from repro.datasets import (
    EXTRACTOR_PROFILES,
    build_scenario,
    medium_config,
    profile_by_name,
    small_config,
    tiny_config,
)
from repro.errors import ConfigError


class TestProfiles:
    def test_twelve_extractors(self):
        assert len(EXTRACTOR_PROFILES) == 12

    def test_paper_names(self):
        names = [p.name for p in EXTRACTOR_PROFILES]
        assert names == [
            "TXT1", "TXT2", "TXT3", "TXT4",
            "DOM1", "DOM2", "DOM3", "DOM4", "DOM5",
            "TBL1", "TBL2", "ANO",
        ]

    def test_content_type_split(self):
        by_primary = {}
        for profile in EXTRACTOR_PROFILES:
            by_primary.setdefault(profile.content_types[0], []).append(profile.name)
        assert len(by_primary["TXT"]) == 4
        assert len(by_primary["DOM"]) == 5
        assert len(by_primary["TBL"]) == 2
        assert len(by_primary["ANO"]) == 1

    def test_two_shared_linkers(self):
        linkers = {p.linker for p in EXTRACTOR_PROFILES}
        assert linkers == {"EL-A", "EL-B"}

    def test_no_confidence_extractors_match_table2(self):
        no_conf = {p.name for p in EXTRACTOR_PROFILES if p.confidence == "none"}
        assert no_conf == {"DOM5", "TBL2"}

    def test_site_restrictions_match_paper(self):
        assert profile_by_name("TXT4").site_categories == ("wiki",)
        assert profile_by_name("DOM5").site_categories == ("wiki",)
        assert profile_by_name("TXT3").site_categories == ("news",)
        assert profile_by_name("DOM1").site_categories is None

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigError):
            profile_by_name("TXT99")


class TestPresets:
    def test_sizes_ordered(self):
        tiny, small, medium = tiny_config(), small_config(), medium_config()
        assert (
            tiny.world.n_entities < small.world.n_entities < medium.world.n_entities
        )
        assert tiny.web.n_pages < small.web.n_pages < medium.web.n_pages

    def test_seed_passed_through(self):
        assert tiny_config(seed=42).seed == 42


class TestScenario:
    def test_cache_returns_same_object(self):
        a = build_scenario(tiny_config(seed=21))
        b = build_scenario(tiny_config(seed=21))
        assert a is b

    def test_cache_bypass(self):
        a = build_scenario(tiny_config(seed=22))
        b = build_scenario(tiny_config(seed=22), use_cache=False)
        assert a is not b
        assert a.records == b.records

    def test_gold_labels_subset_of_unique_triples(self, tiny_scenario):
        unique = set(tiny_scenario.unique_triples())
        assert set(tiny_scenario.gold) <= unique

    def test_gold_coverage_in_paper_ballpark(self, tiny_scenario):
        stats = tiny_scenario.extraction_stats()
        # The paper: 40% of triples labelled; we aim for the same regime.
        assert 0.25 <= stats["gold_coverage"] <= 0.75

    def test_overall_accuracy_in_paper_ballpark(self, tiny_scenario):
        stats = tiny_scenario.extraction_stats()
        # The paper: ~30% of labelled triples are true.
        assert 0.1 <= stats["gold_accuracy"] <= 0.5

    def test_fusion_input_cached(self, tiny_scenario):
        assert tiny_scenario.fusion_input() is tiny_scenario.fusion_input()

    def test_page_lookup(self, tiny_scenario):
        url = tiny_scenario.corpus.pages[0].url
        assert tiny_scenario.page_by_url(url).url == url
        with pytest.raises(KeyError):
            tiny_scenario.page_by_url("http://nowhere.example.org/x")

    def test_different_seeds_differ(self, tiny_scenario, tiny_scenario_alt_seed):
        assert tiny_scenario.records != tiny_scenario_alt_seed.records

    @pytest.mark.parallel_backend
    def test_build_scenario_on_caller_managed_executor(self, tiny_scenario):
        """A shared worker pool can drive scenario extraction; the records
        are bit-identical to the cached serial build."""
        from repro.datasets import tiny_config
        from repro.mapreduce.executors import ParallelExecutor

        with ParallelExecutor(max_workers=2) as executor:
            scenario = build_scenario(
                tiny_config(seed=7), use_cache=False, executor=executor
            )
            assert executor.fallbacks == 0
        assert scenario.records == tiny_scenario.records
        assert scenario.gold == tiny_scenario.gold
