"""Test package: datasets (package __init__ so duplicate basenames import distinctly)."""
