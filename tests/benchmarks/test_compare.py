"""The perf-trajectory comparator: tolerance math, structural vs timing
drift, baseline round-trips, atomic blessing, and its CLI surface.

Everything here runs on hand-built envelopes — no benchmark case is
executed — so the suite stays tier-1 fast while pinning exactly the
behaviour the CI ``perf-crossover`` gate relies on.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import compare as cmp


def make_envelope(**overrides) -> dict:
    envelope = {
        "case": "pipeline",
        "kind": "stage",
        "scale": "small",
        "seed": 0,
        "python": "3.11.7",
        "machine": "x86_64",
        "cpu_count": 1,
        "workers": 2,
        "git_commit": "abc123def456",
        "elapsed_seconds": 12.0,
        "timing_rounds": 3,
        "best_of_seconds": {"serial.fusion": 1.0, "serial.extraction": 2.0},
        "report": {
            "bit_identical": True,
            "hybrid_parity": "tolerance",
            "round_state": "shared-memory",
            "n_pages": 2500,
            "n_records": 36842,
            "best_of": {"serial.fusion": 1.0, "serial.extraction": 2.0},
        },
    }
    envelope.update(overrides)
    return envelope


@pytest.fixture
def blessed(tmp_path):
    """A baseline directory holding the blessing of ``make_envelope()``."""
    cmp.update_baseline(make_envelope(), tmp_path)
    return tmp_path


class TestFingerprint:
    def test_runner_class_key(self):
        assert cmp.fingerprint_of(make_envelope()) == "py3.11-x86_64-cpu1-w2"

    def test_patch_version_is_not_a_new_class(self):
        a = cmp.fingerprint_of(make_envelope(python="3.11.7"))
        b = cmp.fingerprint_of(make_envelope(python="3.11.9"))
        assert a == b

    def test_workers_and_cpus_are(self):
        base = cmp.fingerprint_of(make_envelope())
        assert cmp.fingerprint_of(make_envelope(workers=4)) != base
        assert cmp.fingerprint_of(make_envelope(cpu_count=4)) != base


class TestBaselineRoundTrip:
    def test_bless_then_compare_is_clean(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        result = cmp.compare_envelope(make_envelope(), baseline)
        assert result.ok
        assert result.timing_gated
        assert result.errors == []

    def test_baseline_schema(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        assert baseline["format"] == cmp.BASELINE_FORMAT
        assert baseline["case"] == "pipeline"
        assert baseline["scale"] == "small"
        assert baseline["seed"] == 0
        assert baseline["timing_rounds"] == 3
        assert baseline["stages"] == ["serial.extraction", "serial.fusion"]
        assert baseline["contracts"]["hybrid_parity"] == "tolerance"
        assert baseline["contracts"]["n_records"] == 36842
        (entry,) = baseline["environments"].values()
        assert entry["git_commit"] == "abc123def456"
        assert entry["best_of_seconds"] == {
            "serial.fusion": 1.0,
            "serial.extraction": 2.0,
        }

    def test_missing_baseline_is_an_error(self, tmp_path):
        assert cmp.load_baseline("pipeline", tmp_path) is None
        result = cmp.compare_envelope(make_envelope(), None)
        assert not result.ok
        assert "no committed baseline" in result.errors[0]

    def test_wrong_format_is_an_error(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        baseline["format"] = 99
        result = cmp.compare_envelope(make_envelope(), baseline)
        assert not result.ok
        assert "format" in result.errors[0]


class TestAtomicWrite:
    def test_no_tmp_droppings(self, blessed):
        cmp.update_baseline(make_envelope(), blessed)
        names = [p.name for p in blessed.iterdir()]
        assert names == ["BASELINE_pipeline.json"]

    def test_rebless_merges_new_fingerprint(self, blessed):
        other = make_envelope(cpu_count=4, workers=4)
        cmp.update_baseline(other, blessed)
        baseline = cmp.load_baseline("pipeline", blessed)
        assert set(baseline["environments"]) == {
            "py3.11-x86_64-cpu1-w2",
            "py3.11-x86_64-cpu4-w4",
        }

    def test_structural_change_drops_stale_fingerprints(self, blessed):
        changed = make_envelope(
            cpu_count=4,
            workers=4,
            best_of_seconds={"serial.fusion": 1.0},
        )
        changed["report"] = dict(changed["report"], best_of={"serial.fusion": 1.0})
        cmp.update_baseline(changed, blessed)
        baseline = cmp.load_baseline("pipeline", blessed)
        # The stage set changed, so the old 1-core blessing is invalid
        # and must not survive into the new baseline.
        assert set(baseline["environments"]) == {"py3.11-x86_64-cpu4-w4"}
        assert baseline["stages"] == ["serial.fusion"]


class TestToleranceMath:
    def test_budget_is_multiplier_times_base(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        fresh = make_envelope(
            best_of_seconds={"serial.fusion": 2.99, "serial.extraction": 2.0}
        )
        assert cmp.compare_envelope(fresh, baseline).ok  # 2.99 < 1.0 * 3
        slow = make_envelope(
            best_of_seconds={"serial.fusion": 3.01, "serial.extraction": 2.0}
        )
        result = cmp.compare_envelope(slow, baseline)
        assert not result.ok
        assert "timing regression" in result.errors[0]
        assert "serial.fusion" in result.errors[0]

    def test_floor_absorbs_tiny_stage_noise(self, tmp_path):
        fast = make_envelope(best_of_seconds={"serial.fusion": 0.01})
        fast["report"] = dict(fast["report"], best_of={"serial.fusion": 0.01})
        cmp.update_baseline(fast, tmp_path)
        baseline = cmp.load_baseline("pipeline", tmp_path)
        # 0.03 > 0.01 * 3 but within the absolute floor.
        wobbling = make_envelope(best_of_seconds={"serial.fusion": 0.03})
        wobbling["report"] = fast["report"]
        assert cmp.compare_envelope(wobbling, baseline).ok
        over_floor = make_envelope(best_of_seconds={"serial.fusion": 0.5})
        over_floor["report"] = fast["report"]
        assert not cmp.compare_envelope(over_floor, baseline).ok

    def test_improvement_is_a_note_not_an_error(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        fast = make_envelope(
            best_of_seconds={"serial.fusion": 0.05, "serial.extraction": 0.1}
        )
        result = cmp.compare_envelope(fast, baseline)
        assert result.ok
        assert any("improved" in note for note in result.notes)


class TestStructuralDrift:
    def test_missing_stage_is_always_an_error(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        fresh = make_envelope(best_of_seconds={"serial.fusion": 1.0})
        result = cmp.compare_envelope(fresh, baseline)
        assert not result.ok
        assert any(
            "'serial.extraction' disappeared" in error for error in result.errors
        )

    def test_new_stage_requires_blessing(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        fresh = make_envelope(
            best_of_seconds={
                "serial.fusion": 1.0,
                "serial.extraction": 2.0,
                "serial.shiny": 0.1,
            }
        )
        result = cmp.compare_envelope(fresh, baseline)
        assert not result.ok
        assert any("new stage 'serial.shiny'" in error for error in result.errors)

    def test_changed_contract_is_always_an_error(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        fresh = make_envelope()
        fresh["report"] = dict(fresh["report"], hybrid_parity="bitwise")
        result = cmp.compare_envelope(fresh, baseline)
        assert not result.ok
        assert any("'hybrid_parity' changed" in error for error in result.errors)

    def test_disappeared_contract_key_is_an_error(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        fresh = make_envelope()
        fresh["report"] = {
            k: v for k, v in fresh["report"].items() if k != "bit_identical"
        }
        result = cmp.compare_envelope(fresh, baseline)
        assert not result.ok
        assert any("'bit_identical' disappeared" in error for error in result.errors)

    def test_changed_scale_is_an_error_even_if_faster(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        fresh = make_envelope(
            scale="tiny", best_of_seconds={"serial.fusion": 0.001,
                                           "serial.extraction": 0.001}
        )
        result = cmp.compare_envelope(fresh, baseline)
        assert not result.ok
        assert any("scale" in error for error in result.errors)

    def test_timing_keys_are_not_contract_keys(self):
        # Speedups and cache status are timing/execution facts: pinning
        # them structurally would make every noisy run a "drift".
        for key in ("vectorized_speedup", "classify_speedup", "scenario_cache",
                    "elapsed_seconds", "timings_ms", "metrics"):
            assert key not in cmp.CONTRACT_KEYS


class TestEnvironmentFingerprintGate:
    def test_unblessed_fingerprint_skips_timing_only(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        ci_run = make_envelope(
            cpu_count=4,
            workers=4,
            best_of_seconds={"serial.fusion": 500.0, "serial.extraction": 2.0},
        )
        result = cmp.compare_envelope(ci_run, baseline)
        assert result.ok  # absurd wall-clock, but a different runner class
        assert not result.timing_gated
        assert any("timing gate skipped" in note for note in result.notes)

    def test_unblessed_fingerprint_still_gates_structure(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        ci_run = make_envelope(
            cpu_count=4, workers=4, best_of_seconds={"serial.fusion": 0.1}
        )
        result = cmp.compare_envelope(ci_run, baseline)
        assert not result.ok
        assert any("disappeared" in error for error in result.errors)


class TestRender:
    def test_report_names_verdict_and_stages(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        text = cmp.compare_envelope(make_envelope(), baseline).render()
        assert "verdict: OK" in text
        assert "serial.fusion" in text
        assert "py3.11-x86_64-cpu1-w2" in text

    def test_regression_report_carries_the_numbers(self, blessed):
        baseline = cmp.load_baseline("pipeline", blessed)
        slow = make_envelope(
            best_of_seconds={"serial.fusion": 9.0, "serial.extraction": 2.0}
        )
        text = cmp.compare_envelope(slow, baseline).render()
        assert "verdict: REGRESSION" in text
        assert "9.000" in text


class TestCompareCli:
    def write_envelope(self, tmp_path, envelope, name="BENCH_pipeline.json"):
        path = tmp_path / name
        path.write_text(json.dumps(envelope))
        return path

    def test_bless_then_gate_round_trip(self, tmp_path, capsys):
        envelope_path = self.write_envelope(tmp_path, make_envelope())
        baselines = tmp_path / "baselines"
        assert cmp.main(
            [str(envelope_path), "--update-baseline",
             "--baselines-dir", str(baselines)]
        ) == 0
        assert (baselines / "BASELINE_pipeline.json").exists()
        assert cmp.main(
            [str(envelope_path), "--baselines-dir", str(baselines)]
        ) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        cmp.update_baseline(make_envelope(), baselines)
        slow = make_envelope(
            best_of_seconds={"serial.fusion": 9.0, "serial.extraction": 2.0}
        )
        envelope_path = self.write_envelope(tmp_path, slow)
        assert cmp.main(
            [str(envelope_path), "--baselines-dir", str(baselines)]
        ) == 1
        assert "timing regression" in capsys.readouterr().out

    def test_gate_fails_without_baseline(self, tmp_path, capsys):
        envelope_path = self.write_envelope(tmp_path, make_envelope())
        assert cmp.main(
            [str(envelope_path), "--baselines-dir", str(tmp_path / "empty")]
        ) == 1
        assert "no committed baseline" in capsys.readouterr().out


class TestCommittedBaselines:
    """The repo's own blessed baselines stay coherent with the registry."""

    CASES = ("pipeline", "extraction_stages")

    @pytest.mark.parametrize("case", CASES)
    def test_committed_baseline_is_wellformed(self, case):
        baseline = cmp.load_baseline(case)
        assert baseline is not None, (
            f"benchmarks/baselines/BASELINE_{case}.json is missing — the "
            "CI perf gate has nothing to compare against"
        )
        assert baseline["format"] == cmp.BASELINE_FORMAT
        assert baseline["case"] == case
        assert baseline["scale"] == "small"
        assert baseline["stages"], "a baseline without stages gates nothing"
        for entry in baseline["environments"].values():
            assert set(baseline["stages"]) == set(entry["best_of_seconds"])
            assert all(v > 0 for v in entry["best_of_seconds"].values())

    def test_pipeline_baseline_pins_the_contract(self):
        baseline = cmp.load_baseline("pipeline")
        assert baseline["contracts"]["bit_identical"] is True
        assert baseline["contracts"]["hybrid_parity"] == "tolerance"
        assert {"serial.fusion", "parallel.fusion", "hybrid.fusion"} <= set(
            baseline["stages"]
        )

    @pytest.mark.parametrize("case", CASES)
    def test_committed_baseline_blesses_multiple_runner_classes(self, case):
        # The timing gate only fires for fingerprints with blessed
        # entries; a single-environment baseline would leave every other
        # runner class structurally checked but never timing-gated.
        baseline = cmp.load_baseline(case)
        assert len(baseline["environments"]) >= 2, (
            f"BASELINE_{case}.json blesses only "
            f"{sorted(baseline['environments'])} — the perf trajectory "
            "needs at least two runner-class fingerprints"
        )

    def test_extraction_baseline_times_both_synthesis_paths(self):
        baseline = cmp.load_baseline("extraction_stages")
        assert {"synthesis", "synthesis_batch"} <= set(baseline["stages"])


class TestScaleQualifiedStems:
    """Scale tiers get their own envelope/baseline stems, so the web
    tier's structure and timings never gate the small tier's."""

    def test_default_scales_keep_the_bare_stem(self):
        assert cmp.stem_of("pipeline") == "pipeline"
        assert cmp.stem_of("pipeline", None) == "pipeline"
        assert cmp.stem_of("pipeline", "small") == "pipeline"

    def test_other_scales_qualify(self):
        assert cmp.stem_of("pipeline", "web") == "pipeline--web"
        assert cmp.stem_of("pipeline", "tiny") == "pipeline--tiny"
        assert cmp.stem_of("extraction_stages", "web") == "extraction_stages--web"

    def test_bless_routes_by_scale(self, tmp_path):
        cmp.update_baseline(make_envelope(), tmp_path)
        cmp.update_baseline(make_envelope(scale="web"), tmp_path)
        assert (tmp_path / "BASELINE_pipeline.json").exists()
        assert (tmp_path / "BASELINE_pipeline--web.json").exists()
        small = cmp.load_baseline("pipeline", tmp_path)
        web = cmp.load_baseline("pipeline--web", tmp_path)
        assert small["scale"] == "small" and web["scale"] == "web"

    def test_web_round_trip_gates_cleanly(self, tmp_path):
        envelope = make_envelope(scale="web")
        cmp.update_baseline(envelope, tmp_path)
        baseline = cmp.load_baseline(cmp.stem_of("pipeline", "web"), tmp_path)
        assert cmp.compare_envelope(envelope, baseline).ok

    def test_committed_web_baseline_pins_the_workload(self):
        # The web tier's structural gate is live from day one: the
        # committed baseline must pin the streamed workload shape so a
        # silent worldgen/extraction change at scale fails CI.
        baseline = cmp.load_baseline(cmp.stem_of("pipeline", "web"))
        assert baseline is not None, (
            "BASELINE_pipeline--web.json is missing — the CI web lane "
            "has nothing to gate against"
        )
        assert baseline["format"] == cmp.BASELINE_FORMAT
        assert baseline["scale"] == "web"
        contracts = baseline["contracts"]
        assert contracts["hybrid_parity"] == "tolerance"
        assert contracts["round_state"] == "shared-memory"
        assert contracts["n_records"] > 1_000_000
        assert contracts["n_pages"] > 70_000
        assert "hybrid.total" in baseline["stages"]
