"""The benchmark runner CLI: exit codes, envelope schema, failure
isolation, flag validation, and the --compare / --update-baseline gate.

The registry is monkeypatched with throwaway cases so the CLI paths run
in milliseconds; the real case bodies are exercised by the benchmark
lanes, not tier-1.
"""

from __future__ import annotations

import json

import pytest

import benchmarks.run as run_mod
from benchmarks.registry import TIMING_ROUNDS, BenchCase


def _case(name: str, body, description: str = "test case") -> BenchCase:
    return BenchCase(name=name, run=body, description=description)


def _ok_report(ctx) -> dict:
    return {
        "bit_identical": True,
        "n_records": 7,
        "best_of": {"stage.a": 0.01, "stage.b": 0.02},
    }


@pytest.fixture
def fake_registry(monkeypatch, tmp_path):
    registry = {
        "alpha": _case("alpha", _ok_report),
        "boom": _case(
            "boom", lambda ctx: (_ for _ in ()).throw(KeyError("lost-shard"))
        ),
        "contract": _case(
            "contract",
            lambda ctx: (_ for _ in ()).throw(AssertionError("parity broke")),
        ),
        "omega": _case("omega", _ok_report),
    }
    monkeypatch.setattr(run_mod, "REGISTRY", registry)
    return registry


def run_cli(tmp_path, *argv: str) -> int:
    return run_mod.main(["--out-dir", str(tmp_path / "results"), *argv])


class TestSelection:
    def test_no_selection_is_a_usage_error(self, fake_registry, tmp_path):
        with pytest.raises(SystemExit) as exc:
            run_cli(tmp_path)
        assert exc.value.code == 2

    def test_case_plus_all_is_a_usage_error(self, fake_registry, tmp_path, capsys):
        # Regression: this combination used to silently ignore --all and
        # run only the --case selection.
        with pytest.raises(SystemExit) as exc:
            run_cli(tmp_path, "--case", "alpha", "--all")
        assert exc.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_update_baseline_requires_compare(self, fake_registry, tmp_path):
        with pytest.raises(SystemExit) as exc:
            run_cli(tmp_path, "--case", "alpha", "--update-baseline")
        assert exc.value.code == 2

    def test_all_runs_every_registered_case(self, fake_registry, tmp_path):
        assert run_cli(tmp_path, "--all") == 1  # boom + contract fail
        results = tmp_path / "results"
        assert (results / "BENCH_alpha.json").exists()
        assert (results / "BENCH_omega.json").exists()

    def test_list_exits_zero(self, fake_registry, tmp_path, capsys):
        assert run_mod.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "omega" in out


class TestFailureIsolation:
    def test_non_assertion_error_does_not_stop_the_run(
        self, fake_registry, tmp_path, capsys
    ):
        # Regression: a KeyError from one case used to abort the whole
        # runner, skipping every remaining selected case.
        code = run_cli(
            tmp_path, "--case", "alpha", "--case", "boom", "--case", "omega"
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "boom: ERROR — KeyError" in err
        assert "Traceback" in err and "lost-shard" in err
        assert "1 case(s) failed: boom" in err
        results = tmp_path / "results"
        assert (results / "BENCH_alpha.json").exists()
        assert (results / "BENCH_omega.json").exists()
        assert not (results / "BENCH_boom.json").exists()

    def test_assertion_failure_still_reported_without_traceback(
        self, fake_registry, tmp_path, capsys
    ):
        code = run_cli(tmp_path, "--case", "contract", "--case", "omega")
        assert code == 1
        err = capsys.readouterr().err
        assert "contract: FAILED — parity broke" in err
        assert (tmp_path / "results" / "BENCH_omega.json").exists()

    def test_all_green_exits_zero(self, fake_registry, tmp_path):
        assert run_cli(tmp_path, "--case", "alpha", "--case", "omega") == 0


class TestEnvelopeSchema:
    def test_envelope_carries_the_trajectory_fields(self, fake_registry, tmp_path):
        assert run_cli(tmp_path, "--case", "alpha") == 0
        envelope = json.loads(
            (tmp_path / "results" / "BENCH_alpha.json").read_text()
        )
        assert envelope["case"] == "alpha"
        assert envelope["kind"] == "stage"
        assert envelope["scale"] == "small"
        assert envelope["seed"] == 0
        # Environment fingerprint facts.
        for key in ("python", "machine", "cpu_count", "workers"):
            assert envelope[key], key
        # Trajectory provenance: a real commit hash in a git checkout.
        assert isinstance(envelope["git_commit"], str)
        assert len(envelope["git_commit"]) >= 12
        # Cold single pass AND best-of-N live side by side; only the
        # latter is comparable against baselines.
        assert envelope["elapsed_seconds"] >= 0
        assert envelope["timing_rounds"] == TIMING_ROUNDS
        assert envelope["best_of_seconds"] == {"stage.a": 0.01, "stage.b": 0.02}
        assert envelope["report"]["best_of"] == envelope["best_of_seconds"]

    def test_caseless_report_gets_empty_best_of(self, monkeypatch, tmp_path):
        registry = {"bare": _case("bare", lambda ctx: {"anything": 1})}
        monkeypatch.setattr(run_mod, "REGISTRY", registry)
        assert run_cli(tmp_path, "--case", "bare") == 0
        envelope = json.loads(
            (tmp_path / "results" / "BENCH_bare.json").read_text()
        )
        assert envelope["best_of_seconds"] == {}


class TestCompareMode:
    def baselines(self, tmp_path):
        return str(tmp_path / "baselines")

    def test_update_baseline_blesses_and_exits_zero(self, fake_registry, tmp_path):
        code = run_cli(
            tmp_path, "--case", "alpha", "--compare", "--update-baseline",
            "--baselines-dir", self.baselines(tmp_path),
        )
        assert code == 0
        baseline = json.loads(
            (tmp_path / "baselines" / "BASELINE_alpha.json").read_text()
        )
        assert baseline["stages"] == ["stage.a", "stage.b"]
        assert baseline["contracts"] == {"bit_identical": True, "n_records": 7}

    def test_compare_round_trip_exits_zero(self, fake_registry, tmp_path, capsys):
        run_cli(
            tmp_path, "--case", "alpha", "--compare", "--update-baseline",
            "--baselines-dir", self.baselines(tmp_path),
        )
        code = run_cli(
            tmp_path, "--case", "alpha", "--compare",
            "--baselines-dir", self.baselines(tmp_path),
        )
        assert code == 0
        assert "compare OK" in capsys.readouterr().out
        diff = (tmp_path / "results" / "COMPARE_alpha.txt").read_text()
        assert "verdict: OK" in diff

    def test_compare_without_baseline_fails(self, fake_registry, tmp_path, capsys):
        code = run_cli(
            tmp_path, "--case", "alpha", "--compare",
            "--baselines-dir", self.baselines(tmp_path),
        )
        assert code == 1
        assert "no committed baseline" in capsys.readouterr().err

    def test_timing_regression_fails_and_writes_diff(
        self, fake_registry, tmp_path, monkeypatch, capsys
    ):
        run_cli(
            tmp_path, "--case", "alpha", "--compare", "--update-baseline",
            "--baselines-dir", self.baselines(tmp_path),
        )

        def slow(ctx):
            report = _ok_report(ctx)
            report["best_of"] = {"stage.a": 10.0, "stage.b": 0.02}
            return report

        run_mod.REGISTRY["alpha"] = _case("alpha", slow)
        code = run_cli(
            tmp_path, "--case", "alpha", "--compare",
            "--baselines-dir", self.baselines(tmp_path),
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "regressed against baseline" in err
        diff = (tmp_path / "results" / "COMPARE_alpha.txt").read_text()
        assert "verdict: REGRESSION" in diff
        assert "timing regression" in diff

    def test_disappearing_stage_fails_compare(
        self, fake_registry, tmp_path, capsys
    ):
        run_cli(
            tmp_path, "--case", "alpha", "--compare", "--update-baseline",
            "--baselines-dir", self.baselines(tmp_path),
        )
        run_mod.REGISTRY["alpha"] = _case(
            "alpha",
            lambda ctx: {
                "bit_identical": True,
                "n_records": 7,
                "best_of": {"stage.a": 0.01},
            },
        )
        code = run_cli(
            tmp_path, "--case", "alpha", "--compare",
            "--baselines-dir", self.baselines(tmp_path),
        )
        assert code == 1
        assert "'stage.b' disappeared" in capsys.readouterr().err

    def test_failed_case_is_not_compared(self, fake_registry, tmp_path, capsys):
        code = run_cli(
            tmp_path, "--case", "boom", "--compare",
            "--baselines-dir", self.baselines(tmp_path),
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "boom: ERROR" in captured.err
        assert not (tmp_path / "results" / "COMPARE_boom.txt").exists()
