"""Unit tests for iterative jobs (convergence / forced termination)."""

import pytest

from repro.errors import FusionError
from repro.mapreduce.job import IterativeJob, run_iterative


def halving_job(max_rounds=10, tol=0.01):
    return IterativeJob(
        name="halve",
        step=lambda state, _round: state / 2,
        distance=lambda old, new: abs(old - new),
        max_rounds=max_rounds,
        tol=tol,
    )


class TestIteration:
    def test_converges(self):
        trace = run_iterative(halving_job(), 1.0)
        assert trace.converged
        assert trace.rounds < 10
        assert trace.states[-1] < 0.02

    def test_forced_termination(self):
        trace = run_iterative(halving_job(max_rounds=3, tol=0.0), 1.0)
        assert not trace.converged
        assert trace.rounds == 3
        assert trace.states[-1] == pytest.approx(1 / 8)

    def test_distances_recorded_per_round(self):
        trace = run_iterative(halving_job(max_rounds=4, tol=0.0), 1.0)
        assert trace.distances == pytest.approx([0.5, 0.25, 0.125, 0.0625])

    def test_keep_states_retains_history(self):
        trace = run_iterative(halving_job(max_rounds=3, tol=0.0), 1.0, keep_states=True)
        assert trace.states == pytest.approx([1.0, 0.5, 0.25, 0.125])

    def test_without_keep_states_only_last(self):
        trace = run_iterative(halving_job(max_rounds=3, tol=0.0), 1.0)
        assert len(trace.states) == 1

    def test_step_receives_round_index(self):
        rounds_seen = []

        job = IterativeJob(
            name="spy",
            step=lambda s, i: rounds_seen.append(i) or s,
            distance=lambda a, b: 1.0,
            max_rounds=3,
            tol=0.0,
        )
        run_iterative(job, None)
        assert rounds_seen == [0, 1, 2]


class TestValidation:
    def test_zero_rounds_rejected(self):
        with pytest.raises(FusionError):
            IterativeJob(
                name="x", step=lambda s, i: s, distance=lambda a, b: 0, max_rounds=0
            )

    def test_negative_tol_rejected(self):
        with pytest.raises(FusionError):
            IterativeJob(
                name="x", step=lambda s, i: s, distance=lambda a, b: 0, tol=-1
            )
