"""The per-round shared-memory state channel.

Four properties, each load-bearing:

1. **Resolution everywhere**: a handle resolves in-process (serial
   executor, parent-side fallback paths) and inside pool workers, on
   fork and spawn alike, to the exact arrays that were installed.
2. **Generations**: a new install under the same key supersedes the old
   one — workers never serve a stale round's buffers — and two executors
   sharing a key cannot collide (generations are globally unique).
3. **Degraded fallback**: when shared memory is unavailable (disabled or
   failing at segment creation) the channel degrades to inline pickled
   payloads — counted in ``fallbacks_shm``, tagged in the
   ``round_state_channel``, and numerically indistinguishable.
4. **No leaks**: every segment an executor created is unlinked by the
   next install under its key, by ``uninstall_round_state``, and by
   ``close()`` — nothing survives in ``/dev/shm`` after a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.mapreduce import executors
from repro.mapreduce.executors import (
    ParallelExecutor,
    RoundStateHandle,
    SerialExecutor,
    ShardedMapJob,
)


@dataclass(frozen=True)
class _HandleReader:
    """Picklable shard body: read round-state values for the shard ids."""

    state: RoundStateHandle

    def __call__(self, items: list[int]) -> list[float]:
        arrays = self.state.load()
        return [float(arrays["values"][i]) for i in items]


def _reader_job(handle: RoundStateHandle) -> ShardedMapJob:
    return ShardedMapJob(
        name="round-state-reader", map_shard=_HandleReader(handle), key_fn=str
    )


class TestInProcessResolution:
    def test_serial_install_and_load(self):
        with SerialExecutor() as executor:
            values = np.arange(8, dtype=np.float64)
            handle = executor.install_round_state("test.round", {"values": values})
            assert handle.segment is None and handle.inline is None
            arrays = handle.load()
            assert arrays["values"].base is values  # zero copy in-process
            # Same read-only contract as the shared-memory views.
            assert not arrays["values"].flags.writeable
            with pytest.raises(ValueError):
                arrays["values"][0] = 99.0
            assert executor.run_map([3, 1], _reader_job(handle)) == [3.0, 1.0]

    def test_uninstalled_handle_raises(self):
        executor = SerialExecutor()
        handle = executor.install_round_state(
            "test.round", {"values": np.zeros(1)}
        )
        executor.uninstall_round_state("test.round")
        with pytest.raises(RuntimeError, match="parent-resident"):
            handle.load()

    def test_new_generation_supersedes(self):
        with SerialExecutor() as executor:
            first = executor.install_round_state(
                "test.round", {"values": np.zeros(4)}
            )
            second = executor.install_round_state(
                "test.round", {"values": np.ones(4)}
            )
            assert second.generation > first.generation
            assert second.load()["values"][0] == 1.0

    def test_parallel_parent_side_resolution(self):
        """Tiny jobs fall back in-process; the handle must resolve there."""
        with ParallelExecutor(max_workers=2, min_keys=100) as executor:
            handle = executor.install_round_state(
                "test.round", {"values": np.arange(4, dtype=np.float64)}
            )
            assert executor.run_map([2, 0], _reader_job(handle)) == [2.0, 0.0]
            assert executor.fallbacks_tiny == 1


@pytest.mark.parallel_backend
class TestWorkerResolution:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_workers_read_shared_memory(self, start_method):
        with ParallelExecutor(
            max_workers=2, start_method=start_method
        ) as executor:
            values = np.arange(64, dtype=np.float64) * 0.5
            handle = executor.install_round_state("test.round", {"values": values})
            assert handle.segment is not None
            out = executor.run_map(list(range(64)), _reader_job(handle))
            assert out == values.tolist()
            assert executor.fallbacks == 0 and executor.fallbacks_shm == 0
            assert executor.round_state_channel == "shared-memory"

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_workers_track_generations(self, start_method):
        """A warm pool must serve the *new* round's buffers after a
        reinstall, not its cached attachment of the old segment."""
        with ParallelExecutor(
            max_workers=2, start_method=start_method
        ) as executor:
            first = executor.install_round_state(
                "test.round", {"values": np.zeros(32)}
            )
            assert executor.run_map(list(range(32)), _reader_job(first)) == [0.0] * 32
            second = executor.install_round_state(
                "test.round", {"values": np.ones(32)}
            )
            assert executor.run_map(list(range(32)), _reader_job(second)) == [1.0] * 32

    def test_mixed_dtypes_round_trip(self):
        """float64 + bool layouts share one segment, offsets aligned."""

        @dataclass(frozen=True)
        class _Probe:
            state: RoundStateHandle

            def __call__(self, items):
                arrays = self.state.load()
                return [
                    (float(arrays["acc"][i]), bool(arrays["mask"][i]))
                    for i in items
                ]

        acc = np.linspace(0.0, 1.0, 33)
        mask = np.arange(33) % 3 == 0
        with ParallelExecutor(max_workers=2) as executor:
            handle = executor.install_round_state(
                "test.round", {"mask": mask, "acc": acc}
            )
            job = ShardedMapJob(name="probe", map_shard=_Probe(handle), key_fn=str)
            out = executor.run_map(list(range(33)), job)
        assert out == [(float(a), bool(m)) for a, m in zip(acc, mask)]


class TestDegradedFallback:
    def test_disabled_shared_memory_goes_inline(self):
        with ParallelExecutor(max_workers=2, use_shared_memory=False) as executor:
            handle = executor.install_round_state(
                "test.round", {"values": np.arange(16, dtype=np.float64)}
            )
            assert handle.segment is None and handle.inline is not None
            assert executor.fallbacks_shm == 1
            assert executor.round_state_channel == "inline (shm fallback)"
            out = executor.run_map(list(range(16)), _reader_job(handle))
            assert out == list(np.arange(16, dtype=np.float64))

    def test_segment_creation_failure_degrades_permanently(self, monkeypatch):
        """A failing shared_memory module must not take the run down —
        the executor degrades to the inline channel and stays there."""
        real = shared_memory.SharedMemory

        def exploding(*args, **kwargs):
            if kwargs.get("create"):
                raise OSError("no /dev/shm here")
            return real(*args, **kwargs)

        monkeypatch.setattr(executors.shared_memory, "SharedMemory", exploding)
        with ParallelExecutor(max_workers=2) as executor:
            handle = executor.install_round_state(
                "test.round", {"values": np.ones(8)}
            )
            assert handle.inline is not None
            assert not executor.use_shared_memory  # degraded for good
            assert executor.fallbacks_shm == 1
            again = executor.install_round_state(
                "test.round", {"values": np.ones(8)}
            )
            assert again.inline is not None
            assert executor.fallbacks_shm == 2

    def test_inline_fusion_still_bit_identical(self, micro_scenario):
        """The fallback channel is a wire format, not a semantic: fused
        output equals the shared-memory (and serial) reference exactly,
        and the degrade is tagged in the run's diagnostics."""
        from repro.fusion import popaccu

        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(backend="serial").fuse(fusion_input)
        with ParallelExecutor(max_workers=2, use_shared_memory=False) as executor:
            inline = popaccu(backend="parallel").fuse(
                fusion_input, executor=executor
            )
        assert inline.probabilities == serial.probabilities
        assert inline.accuracies == serial.accuracies
        assert inline.diagnostics["round_state"] == "inline (shm fallback)"
        assert inline.diagnostics["fallbacks_shm"] > 0


class TestNoLeaks:
    def _assert_unlinked(self, segment_names):
        assert segment_names, "no segments were created"
        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_reinstall_unlinks_previous_segment(self):
        executor = ParallelExecutor(max_workers=2)
        first = executor.install_round_state("test.round", {"values": np.zeros(4)})
        executor.install_round_state("test.round", {"values": np.ones(4)})
        self._assert_unlinked([first.segment])
        executor.close()

    def test_uninstall_and_close_unlink(self):
        executor = ParallelExecutor(max_workers=2)
        a = executor.install_round_state("test.a", {"values": np.zeros(4)})
        b = executor.install_round_state("test.b", {"values": np.ones(4)})
        executor.uninstall_round_state("test.a")
        self._assert_unlinked([a.segment])
        executor.close()
        self._assert_unlinked([b.segment])
        assert executor._round_segments == {}

    @pytest.mark.parallel_backend
    def test_fusion_run_leaves_no_segments(self, micro_scenario, monkeypatch):
        """Every segment a full multi-round fusion run creates is gone
        once the run returns — on a caller-managed executor, *before*
        close() (the stage uninstalls its round state on exit)."""
        created: list[str] = []
        real = shared_memory.SharedMemory

        def recording(*args, **kwargs):
            segment = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(segment.name)
            return segment

        monkeypatch.setattr(executors.shared_memory, "SharedMemory", recording)
        from repro.fusion import popaccu

        with ParallelExecutor(max_workers=2) as executor:
            result = popaccu(backend="parallel").fuse(
                micro_scenario.fusion_input(), executor=executor
            )
            assert result.diagnostics["round_state"] == "shared-memory"
            # Two installs per round (Stage I + Stage II), every one
            # already unlinked by the time fuse() returned.
            assert len(created) >= 2 * result.rounds
            self._assert_unlinked(created)
