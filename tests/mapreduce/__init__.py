"""Test package: mapreduce (package __init__ so duplicate basenames import distinctly)."""
