"""``scan_payload_types``: the runtime payload-purity audit.

The audit is the runtime twin of the static DET003 rule — it must see
*every* reachable type, because a container it does not recurse into is
a smuggling route for domain objects.  The matrix test drives one
smuggled sentinel through every supported container shape.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass

import numpy as np
import pytest

from repro.mapreduce.codec import scan_payload_types


class Smuggled:
    """Sentinel domain object that must never escape the audit."""


SENTINEL = Smuggled()


@dataclass(frozen=True)
class Spec:
    name: str
    payload: object


@dataclass
class SlottedSpec:
    __slots__ = ("payload",)
    payload: object


CONTAINERS = [
    ("tuple", lambda x: (x,)),
    ("list", lambda x: [x]),
    ("set", lambda x: {x}),
    ("frozenset", lambda x: frozenset({x})),
    ("deque", lambda x: collections.deque([x])),
    ("dict_value", lambda x: {"k": x}),
    ("dict_key", lambda x: {x: 1}),
    ("defaultdict_value", lambda x: collections.defaultdict(list, {"k": x})),
    ("ordereddict_value", lambda x: collections.OrderedDict(k=x)),
    ("object_ndarray", lambda x: np.array([x], dtype=object)),
    ("nested", lambda x: [(collections.deque([{"k": frozenset({(x,)})}]),)]),
    ("dataclass_dict", lambda x: Spec(name="s", payload=x)),
    ("dataclass_slots", lambda x: SlottedSpec(x)),
]


@pytest.mark.parametrize(
    "wrap", [c[1] for c in CONTAINERS], ids=[c[0] for c in CONTAINERS]
)
def test_smuggled_object_is_always_seen(wrap):
    assert Smuggled in scan_payload_types(wrap(SENTINEL))


def test_memoryview_audits_backing_object():
    view = memoryview(bytearray(b"abc"))
    types = scan_payload_types(view)
    assert memoryview in types
    assert bytearray in types


def test_bytes_and_strings_are_leaves():
    # Iterating a bytes/str would report int/str per element — noise.
    assert scan_payload_types(b"abc") == {bytes}
    assert scan_payload_types(bytearray(b"abc")) == {bytearray}
    assert scan_payload_types("abc") == {str}


def test_defaultdict_closure_factory_is_audited():
    def factory():
        return SENTINEL

    payload = collections.defaultdict(factory)
    types = scan_payload_types(payload)
    # The closure itself is visible (a function riding in a payload is
    # already suspicious); bare type factories stay invisible.
    assert any(t.__name__ == "function" for t in types)
    assert scan_payload_types(collections.defaultdict(list)) == {
        collections.defaultdict
    }


def test_numeric_ndarray_is_a_leaf():
    assert scan_payload_types(np.zeros(4)) == {np.ndarray}


def test_clean_shard_payload_shape():
    payload = {"item_ids": (1, 2, 3), "seed": 7, "name": "stage1"}
    assert scan_payload_types(payload) <= {dict, tuple, int, str}


def test_cycles_terminate():
    loop: list = []
    loop.append(loop)
    assert list in scan_payload_types(loop)
