"""Unit tests for the execution backends of the MapReduce engine."""

import pytest

from repro.mapreduce.codec import WireCodec, scan_payload_types
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ShardedMapJob,
    shard_for_key,
    worker_state,
)

pytestmark = pytest.mark.parallel_backend


def _split_mapper(text):
    return [(word, 1) for word in text.split()]


def _count_reducer(word, ones):
    return [(word, sum(ones))]


def _tuple_reducer(key, values):
    return [(key, tuple(values))]


def word_count_job(sample_limit=None, seed=0):
    return MapReduceJob(
        name="wordcount",
        mapper=_split_mapper,
        reducer=_count_reducer,
        sample_limit=sample_limit,
        seed=seed,
    )


CORPUS = ["a b a", "b c", "d e f g a", "c c c"]


@pytest.fixture(scope="module")
def parallel():
    with ParallelExecutor(max_workers=2) as executor:
        yield executor


class TestProtocol:
    def test_executors_satisfy_protocol(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ParallelExecutor(), Executor)

    def test_engine_defaults_to_serial(self):
        assert isinstance(MapReduceEngine().executor, SerialExecutor)


class TestParallelMatchesSerial:
    def test_word_count_identical(self, parallel):
        job = word_count_job()
        serial_out = SerialExecutor().run(CORPUS, job)
        parallel_out = parallel.run(CORPUS, job)
        assert parallel_out == serial_out
        assert parallel.fallbacks == 0

    def test_output_key_order_is_sorted(self, parallel):
        job = word_count_job()
        keys = [key for key, _count in parallel.run(CORPUS, job)]
        assert keys == sorted(keys)

    def test_sampling_identical_across_backends(self, parallel):
        data = [f"k{i % 7} v{i}" for i in range(300)]
        job = MapReduceJob(
            name="pick",
            mapper=_split_mapper,
            reducer=_tuple_reducer,
            sample_limit=5,
            seed=42,
        )
        assert parallel.run(data, job) == SerialExecutor().run(data, job)

    def test_engine_with_parallel_executor(self, parallel):
        engine = MapReduceEngine(parallel)
        assert dict(engine.run(["a b a", "b c"], word_count_job())) == {
            "a": 2,
            "b": 2,
            "c": 1,
        }


class TestFallbacks:
    def test_unpicklable_reducer_falls_back_to_serial(self, parallel):
        job = MapReduceJob(
            name="closure",
            mapper=_split_mapper,
            reducer=lambda key, values: [(key, sum(values))],  # not picklable
        )
        before = parallel.fallbacks_unpicklable
        before_tiny = parallel.fallbacks_tiny
        out = parallel.run(CORPUS, job)
        assert parallel.fallbacks_unpicklable == before + 1
        assert parallel.fallbacks_tiny == before_tiny
        assert out == SerialExecutor().run(CORPUS, job)

    def test_tiny_group_count_falls_back(self):
        with ParallelExecutor(max_workers=2, min_keys=100) as executor:
            out = executor.run(CORPUS, word_count_job())
            assert executor.fallbacks_tiny == 1
            assert executor.fallbacks_unpicklable == 0
            assert out == SerialExecutor().run(CORPUS, word_count_job())

    def test_fallbacks_sums_all_counters(self):
        executor = ParallelExecutor(max_workers=2)
        executor.fallbacks_tiny = 2
        executor.fallbacks_unpicklable = 3
        executor.fallbacks_shm = 4
        assert executor.fallbacks == 9


def _square_shard(items):
    return [item * item for item in items]


def _identity_key(item):
    return item


def _encode_out(value):
    return ("wire", value)


def _decode_out(wire):
    tag, value = wire
    assert tag == "wire"
    return value


def square_map_job(encode=None, decode=None):
    return ShardedMapJob(
        name="square",
        map_shard=_square_shard,
        key_fn=_identity_key,
        encode=encode,
        decode=decode,
    )


class TestShardedMap:
    ITEMS = list(range(37))

    def test_serial_preserves_input_order(self):
        assert SerialExecutor().run_map(self.ITEMS, square_map_job()) == [
            i * i for i in self.ITEMS
        ]

    def test_parallel_identical_to_serial(self, parallel):
        job = square_map_job()
        assert parallel.run_map(self.ITEMS, job) == SerialExecutor().run_map(
            self.ITEMS, job
        )
        assert parallel.fallbacks_tiny == 0

    def test_wire_codec_round_trips(self, parallel):
        job = square_map_job(encode=_encode_out, decode=_decode_out)
        assert parallel.run_map(self.ITEMS, job) == [i * i for i in self.ITEMS]

    def test_serial_path_skips_wire_codec(self):
        # In-process there is no boundary to cross; encode/decode must not run.
        def boom(_value):
            raise AssertionError("codec ran in-process")

        job = square_map_job(encode=boom, decode=boom)
        assert SerialExecutor().run_map(self.ITEMS, job) == [
            i * i for i in self.ITEMS
        ]

    def test_tiny_item_count_falls_back(self):
        with ParallelExecutor(max_workers=2, min_keys=100) as executor:
            out = executor.run_map(self.ITEMS, square_map_job())
            assert out == [i * i for i in self.ITEMS]
            assert executor.fallbacks_tiny == 1

    def test_unpicklable_map_falls_back(self, parallel):
        job = ShardedMapJob(
            name="closure",
            map_shard=lambda items: [i * i for i in items],  # not picklable
            key_fn=_identity_key,
        )
        before = parallel.fallbacks_unpicklable
        assert parallel.run_map(self.ITEMS, job) == [i * i for i in self.ITEMS]
        assert parallel.fallbacks_unpicklable == before + 1

    def test_wrong_output_arity_rejected(self):
        job = ShardedMapJob(
            name="dropper",
            map_shard=lambda items: items[:-1],
            key_fn=_identity_key,
        )
        with pytest.raises(ValueError):
            SerialExecutor().run_map(self.ITEMS, job)


def _offset_shard(items):
    """A shard body that depends on pool-resident state."""
    offset = worker_state("test.offset")
    return [item + offset for item in items]


def offset_map_job():
    return ShardedMapJob(
        name="offset", map_shard=_offset_shard, key_fn=_identity_key
    )


class TestWorkerState:
    ITEMS = list(range(23))

    def test_serial_install_and_cleanup(self):
        executor = SerialExecutor()
        executor.install_state("test.offset", 100)
        assert executor.run_map(self.ITEMS, offset_map_job()) == [
            i + 100 for i in self.ITEMS
        ]
        executor.close()
        with pytest.raises(RuntimeError, match="test.offset"):
            worker_state("test.offset")

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_parallel_state_reaches_workers(self, start_method):
        with ParallelExecutor(max_workers=2, start_method=start_method) as executor:
            executor.install_state("test.offset", 1000)
            assert executor.run_map(self.ITEMS, offset_map_job()) == [
                i + 1000 for i in self.ITEMS
            ]
            assert executor.fallbacks == 0

    def test_missing_state_raises_with_hint(self):
        with pytest.raises(RuntimeError, match="install_state"):
            worker_state("test.never-installed")

    def test_reinstalling_identical_state_keeps_pool(self):
        with ParallelExecutor(max_workers=2) as executor:
            executor.install_state("test.offset", 7)
            executor.run_map(self.ITEMS, offset_map_job())
            pool = executor._pool
            assert pool is not None
            executor.install_state("test.offset", 7)
            assert executor._pool is pool

    def test_new_state_restarts_pool_once(self):
        with ParallelExecutor(max_workers=2) as executor:
            executor.install_state("test.offset", 7)
            executor.run_map(self.ITEMS, offset_map_job())
            first_pool = executor._pool
            executor.install_state("test.offset", 8)
            assert executor._pool is None  # restarted lazily
            assert executor.run_map(self.ITEMS, offset_map_job()) == [
                i + 8 for i in self.ITEMS
            ]
            assert executor._pool is not first_pool

    def test_state_resolves_on_in_process_fallback(self):
        # min_keys forces the tiny fallback: the shard body must still
        # find the state through the parent-side registry.
        with ParallelExecutor(max_workers=2, min_keys=100) as executor:
            executor.install_state("test.offset", 5)
            assert executor.run_map(self.ITEMS, offset_map_job()) == [
                i + 5 for i in self.ITEMS
            ]
            assert executor.fallbacks_tiny == 1

    def test_close_uninstalls_parallel_state(self):
        executor = ParallelExecutor(max_workers=2)
        executor.install_state("test.offset", 7)
        executor.close()
        with pytest.raises(RuntimeError):
            worker_state("test.offset")

    def test_unpicklable_state_degrades_to_in_process(self):
        """State that will not pickle never reaches workers; jobs run
        in-process against the parent registry and are counted, exactly
        like an unpicklable work unit."""
        with ParallelExecutor(max_workers=2) as executor:
            executor.install_state("test.offset", 10)  # lambda-free baseline
            unpicklable = {"offset": 10, "hook": lambda: None}
            executor.install_state("test.unpicklable", unpicklable)
            assert executor.run_map(self.ITEMS, offset_map_job()) == [
                i + 10 for i in self.ITEMS
            ]
            assert executor.fallbacks_unpicklable == 1
            # Replacing the bad state restores real dispatch.
            executor.install_state("test.unpicklable", {"offset": 10})
            assert executor.run_map(self.ITEMS, offset_map_job()) == [
                i + 10 for i in self.ITEMS
            ]
            assert executor.fallbacks_unpicklable == 1

    def test_uninstall_state_drops_key_from_future_pools(self):
        with ParallelExecutor(max_workers=2) as executor:
            executor.install_state("test.offset", 3)
            executor.install_state("test.extra", "heavy")
            executor.uninstall_state("test.extra")
            assert "test.extra" not in executor._state_blobs
            with pytest.raises(RuntimeError):
                worker_state("test.extra")
            assert executor.run_map(self.ITEMS, offset_map_job()) == [
                i + 3 for i in self.ITEMS
            ]

    def test_close_leaves_another_executors_state_alone(self):
        """Later installs win; an earlier executor's close must not tear
        down the value a live executor has since installed."""
        first = SerialExecutor()
        second = SerialExecutor()
        try:
            first.install_state("test.offset", 1)
            second.install_state("test.offset", 2)
            first.close()
            assert worker_state("test.offset") == 2
        finally:
            second.close()


class TestWireCodecLayer:
    def test_job_accepts_codec_object(self, parallel):
        codec = WireCodec(encode=_encode_out, decode=_decode_out)
        job = ShardedMapJob(
            name="square", map_shard=_square_shard, key_fn=_identity_key,
            codec=codec,
        )
        assert parallel.run_map(TestShardedMap.ITEMS, job) == [
            i * i for i in TestShardedMap.ITEMS
        ]

    def test_codec_and_callables_mutually_exclusive(self):
        codec = WireCodec(encode=_encode_out, decode=_decode_out)
        with pytest.raises(ValueError, match="not both"):
            ShardedMapJob(
                name="square", map_shard=_square_shard, key_fn=_identity_key,
                codec=codec, encode=_encode_out,
            )

    def test_scan_payload_types_sees_through_containers(self):
        import numpy as np

        class Marker:
            pass

        payload = {"a": [(1, Marker()), np.arange(3)], ("k",): {2.0}}
        types = scan_payload_types(payload)
        assert Marker in types
        assert int in types and float in types

    def test_scan_payload_types_descends_into_dataclasses(self):
        from dataclasses import dataclass

        class Marker:
            pass

        @dataclass(frozen=True)
        class Spec:
            inner: object

        assert Marker in scan_payload_types(Spec(inner=(Marker(),)))


class TestSharding:
    def test_shard_assignment_is_stable(self):
        keys = ["alpha", ("a", "b"), ("a", "b", "c"), "omega"]
        assignments = [shard_for_key(key, 8) for key in keys]
        assert assignments == [shard_for_key(key, 8) for key in keys]
        assert all(0 <= shard < 8 for shard in assignments)

    def test_all_keys_survive_sharding(self, parallel):
        data = [f"w{i}" for i in range(200)]
        job = MapReduceJob(
            name="identity", mapper=lambda r: [(r, r)], reducer=_tuple_reducer
        )
        # Lambda mapper is fine (maps in-process); reducer must pickle.
        out = dict(parallel.run(data, job))
        assert set(out) == set(data)
