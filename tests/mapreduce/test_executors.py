"""Unit tests for the execution backends of the MapReduce engine."""

import pytest

from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ShardedMapJob,
    shard_for_key,
)


def _split_mapper(text):
    return [(word, 1) for word in text.split()]


def _count_reducer(word, ones):
    return [(word, sum(ones))]


def _tuple_reducer(key, values):
    return [(key, tuple(values))]


def word_count_job(sample_limit=None, seed=0):
    return MapReduceJob(
        name="wordcount",
        mapper=_split_mapper,
        reducer=_count_reducer,
        sample_limit=sample_limit,
        seed=seed,
    )


CORPUS = ["a b a", "b c", "d e f g a", "c c c"]


@pytest.fixture(scope="module")
def parallel():
    with ParallelExecutor(max_workers=2) as executor:
        yield executor


class TestProtocol:
    def test_executors_satisfy_protocol(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ParallelExecutor(), Executor)

    def test_engine_defaults_to_serial(self):
        assert isinstance(MapReduceEngine().executor, SerialExecutor)


class TestParallelMatchesSerial:
    def test_word_count_identical(self, parallel):
        job = word_count_job()
        serial_out = SerialExecutor().run(CORPUS, job)
        parallel_out = parallel.run(CORPUS, job)
        assert parallel_out == serial_out
        assert parallel.fallbacks == 0

    def test_output_key_order_is_sorted(self, parallel):
        job = word_count_job()
        keys = [key for key, _count in parallel.run(CORPUS, job)]
        assert keys == sorted(keys)

    def test_sampling_identical_across_backends(self, parallel):
        data = [f"k{i % 7} v{i}" for i in range(300)]
        job = MapReduceJob(
            name="pick",
            mapper=_split_mapper,
            reducer=_tuple_reducer,
            sample_limit=5,
            seed=42,
        )
        assert parallel.run(data, job) == SerialExecutor().run(data, job)

    def test_engine_with_parallel_executor(self, parallel):
        engine = MapReduceEngine(parallel)
        assert dict(engine.run(["a b a", "b c"], word_count_job())) == {
            "a": 2,
            "b": 2,
            "c": 1,
        }


class TestFallbacks:
    def test_unpicklable_reducer_falls_back_to_serial(self, parallel):
        job = MapReduceJob(
            name="closure",
            mapper=_split_mapper,
            reducer=lambda key, values: [(key, sum(values))],  # not picklable
        )
        before = parallel.fallbacks_unpicklable
        before_tiny = parallel.fallbacks_tiny
        out = parallel.run(CORPUS, job)
        assert parallel.fallbacks_unpicklable == before + 1
        assert parallel.fallbacks_tiny == before_tiny
        assert out == SerialExecutor().run(CORPUS, job)

    def test_tiny_group_count_falls_back(self):
        with ParallelExecutor(max_workers=2, min_keys=100) as executor:
            out = executor.run(CORPUS, word_count_job())
            assert executor.fallbacks_tiny == 1
            assert executor.fallbacks_unpicklable == 0
            assert out == SerialExecutor().run(CORPUS, word_count_job())

    def test_fallbacks_sums_both_counters(self):
        executor = ParallelExecutor(max_workers=2)
        executor.fallbacks_tiny = 2
        executor.fallbacks_unpicklable = 3
        assert executor.fallbacks == 5


def _square_shard(items):
    return [item * item for item in items]


def _identity_key(item):
    return item


def _encode_out(value):
    return ("wire", value)


def _decode_out(wire):
    tag, value = wire
    assert tag == "wire"
    return value


def square_map_job(encode=None, decode=None):
    return ShardedMapJob(
        name="square",
        map_shard=_square_shard,
        key_fn=_identity_key,
        encode=encode,
        decode=decode,
    )


class TestShardedMap:
    ITEMS = list(range(37))

    def test_serial_preserves_input_order(self):
        assert SerialExecutor().run_map(self.ITEMS, square_map_job()) == [
            i * i for i in self.ITEMS
        ]

    def test_parallel_identical_to_serial(self, parallel):
        job = square_map_job()
        assert parallel.run_map(self.ITEMS, job) == SerialExecutor().run_map(
            self.ITEMS, job
        )
        assert parallel.fallbacks_tiny == 0

    def test_wire_codec_round_trips(self, parallel):
        job = square_map_job(encode=_encode_out, decode=_decode_out)
        assert parallel.run_map(self.ITEMS, job) == [i * i for i in self.ITEMS]

    def test_serial_path_skips_wire_codec(self):
        # In-process there is no boundary to cross; encode/decode must not run.
        def boom(_value):
            raise AssertionError("codec ran in-process")

        job = square_map_job(encode=boom, decode=boom)
        assert SerialExecutor().run_map(self.ITEMS, job) == [
            i * i for i in self.ITEMS
        ]

    def test_tiny_item_count_falls_back(self):
        with ParallelExecutor(max_workers=2, min_keys=100) as executor:
            out = executor.run_map(self.ITEMS, square_map_job())
            assert out == [i * i for i in self.ITEMS]
            assert executor.fallbacks_tiny == 1

    def test_unpicklable_map_falls_back(self, parallel):
        job = ShardedMapJob(
            name="closure",
            map_shard=lambda items: [i * i for i in items],  # not picklable
            key_fn=_identity_key,
        )
        before = parallel.fallbacks_unpicklable
        assert parallel.run_map(self.ITEMS, job) == [i * i for i in self.ITEMS]
        assert parallel.fallbacks_unpicklable == before + 1

    def test_wrong_output_arity_rejected(self):
        job = ShardedMapJob(
            name="dropper",
            map_shard=lambda items: items[:-1],
            key_fn=_identity_key,
        )
        with pytest.raises(ValueError):
            SerialExecutor().run_map(self.ITEMS, job)


class TestSharding:
    def test_shard_assignment_is_stable(self):
        keys = ["alpha", ("a", "b"), ("a", "b", "c"), "omega"]
        assignments = [shard_for_key(key, 8) for key in keys]
        assert assignments == [shard_for_key(key, 8) for key in keys]
        assert all(0 <= shard < 8 for shard in assignments)

    def test_all_keys_survive_sharding(self, parallel):
        data = [f"w{i}" for i in range(200)]
        job = MapReduceJob(
            name="identity", mapper=lambda r: [(r, r)], reducer=_tuple_reducer
        )
        # Lambda mapper is fine (maps in-process); reducer must pickle.
        out = dict(parallel.run(data, job))
        assert set(out) == set(data)
