"""Unit tests for the execution backends of the MapReduce engine."""

import pytest

from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    shard_for_key,
)


def _split_mapper(text):
    return [(word, 1) for word in text.split()]


def _count_reducer(word, ones):
    return [(word, sum(ones))]


def _tuple_reducer(key, values):
    return [(key, tuple(values))]


def word_count_job(sample_limit=None, seed=0):
    return MapReduceJob(
        name="wordcount",
        mapper=_split_mapper,
        reducer=_count_reducer,
        sample_limit=sample_limit,
        seed=seed,
    )


CORPUS = ["a b a", "b c", "d e f g a", "c c c"]


@pytest.fixture(scope="module")
def parallel():
    with ParallelExecutor(max_workers=2) as executor:
        yield executor


class TestProtocol:
    def test_executors_satisfy_protocol(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ParallelExecutor(), Executor)

    def test_engine_defaults_to_serial(self):
        assert isinstance(MapReduceEngine().executor, SerialExecutor)


class TestParallelMatchesSerial:
    def test_word_count_identical(self, parallel):
        job = word_count_job()
        serial_out = SerialExecutor().run(CORPUS, job)
        parallel_out = parallel.run(CORPUS, job)
        assert parallel_out == serial_out
        assert parallel.fallbacks == 0

    def test_output_key_order_is_sorted(self, parallel):
        job = word_count_job()
        keys = [key for key, _count in parallel.run(CORPUS, job)]
        assert keys == sorted(keys)

    def test_sampling_identical_across_backends(self, parallel):
        data = [f"k{i % 7} v{i}" for i in range(300)]
        job = MapReduceJob(
            name="pick",
            mapper=_split_mapper,
            reducer=_tuple_reducer,
            sample_limit=5,
            seed=42,
        )
        assert parallel.run(data, job) == SerialExecutor().run(data, job)

    def test_engine_with_parallel_executor(self, parallel):
        engine = MapReduceEngine(parallel)
        assert dict(engine.run(["a b a", "b c"], word_count_job())) == {
            "a": 2,
            "b": 2,
            "c": 1,
        }


class TestFallbacks:
    def test_unpicklable_reducer_falls_back_to_serial(self, parallel):
        job = MapReduceJob(
            name="closure",
            mapper=_split_mapper,
            reducer=lambda key, values: [(key, sum(values))],  # not picklable
        )
        before = parallel.fallbacks
        out = parallel.run(CORPUS, job)
        assert parallel.fallbacks == before + 1
        assert out == SerialExecutor().run(CORPUS, job)

    def test_tiny_group_count_falls_back(self):
        with ParallelExecutor(max_workers=2, min_keys=100) as executor:
            out = executor.run(CORPUS, word_count_job())
            assert executor.fallbacks == 1
            assert out == SerialExecutor().run(CORPUS, word_count_job())


class TestSharding:
    def test_shard_assignment_is_stable(self):
        keys = ["alpha", ("a", "b"), ("a", "b", "c"), "omega"]
        assignments = [shard_for_key(key, 8) for key in keys]
        assert assignments == [shard_for_key(key, 8) for key in keys]
        assert all(0 <= shard < 8 for shard in assignments)

    def test_all_keys_survive_sharding(self, parallel):
        data = [f"w{i}" for i in range(200)]
        job = MapReduceJob(
            name="identity", mapper=lambda r: [(r, r)], reducer=_tuple_reducer
        )
        # Lambda mapper is fine (maps in-process); reducer must pickle.
        out = dict(parallel.run(data, job))
        assert set(out) == set(data)
