"""Unit tests for the MapReduce engine."""

import pytest

from repro.errors import FusionError
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob


def word_count_job(sample_limit=None):
    return MapReduceJob(
        name="wordcount",
        mapper=lambda text: [(word, 1) for word in text.split()],
        reducer=lambda word, ones: [(word, sum(ones))],
        sample_limit=sample_limit,
    )


class TestBasics:
    def test_word_count(self):
        engine = MapReduceEngine()
        out = dict(engine.run(["a b a", "b c"], word_count_job()))
        assert out == {"a": 2, "b": 2, "c": 1}

    def test_empty_input(self):
        assert MapReduceEngine().run([], word_count_job()) == []

    def test_mapper_can_emit_nothing(self):
        job = MapReduceJob(
            name="drop", mapper=lambda _r: [], reducer=lambda k, v: [(k, v)]
        )
        assert MapReduceEngine().run([1, 2, 3], job) == []

    def test_reducer_can_emit_many(self):
        job = MapReduceJob(
            name="fan",
            mapper=lambda r: [("k", r)],
            reducer=lambda k, values: [(k, v) for v in values],
        )
        assert MapReduceEngine().run([1, 2], job) == [("k", 1), ("k", 2)]

    def test_keys_reduced_in_sorted_order(self):
        engine = MapReduceEngine()
        seen = []
        job = MapReduceJob(
            name="order",
            mapper=lambda r: [(r, r)],
            reducer=lambda k, v: seen.append(k) or [],
        )
        engine.run(["c", "a", "b"], job)
        assert seen == ["a", "b", "c"]

    def test_output_independent_of_input_order(self):
        engine = MapReduceEngine()
        a = engine.run(["a b a", "b c"], word_count_job())
        b = engine.run(["b c", "a b a"], word_count_job())
        assert a == b


class TestSampling:
    def test_no_sampling_below_limit(self):
        engine = MapReduceEngine()
        out = dict(engine.run(["a a a"], word_count_job(sample_limit=5)))
        assert out == {"a": 3}

    def test_sampling_caps_reducer_input(self):
        engine = MapReduceEngine()
        out = dict(engine.run(["a " * 100], word_count_job(sample_limit=10)))
        assert out == {"a": 10}

    def test_sampling_deterministic(self):
        engine = MapReduceEngine()
        job = MapReduceJob(
            name="pick",
            mapper=lambda r: [("k", r)],
            reducer=lambda k, values: [tuple(values)],
            sample_limit=3,
            seed=42,
        )
        data = list(range(100))
        assert engine.run(data, job) == engine.run(data, job)

    def test_sampling_differs_by_seed(self):
        data = list(range(1000))

        def run_with(seed):
            job = MapReduceJob(
                name="pick",
                mapper=lambda r: [("k", r)],
                reducer=lambda k, values: [tuple(values)],
                sample_limit=5,
                seed=seed,
            )
            return MapReduceEngine().run(data, job)

        assert run_with(1) != run_with(2)

    def test_invalid_sample_limit_rejected(self):
        with pytest.raises(FusionError):
            word_count_job(sample_limit=0)
