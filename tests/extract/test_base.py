"""Unit tests for the extractor base class and profile validation."""

import pytest

from repro.errors import ConfigError
from repro.extract.base import ExtractorProfile
from repro.extract.linkage import EntityLinker
from repro.extract.text import TextExtractor
from repro.world.labels import build_templates
from repro.world.webgen import WebPage


def make_profile(**kwargs):
    defaults = dict(name="X", content_types=("TXT",))
    defaults.update(kwargs)
    return ExtractorProfile(**defaults)


class TestProfileValidation:
    def test_defaults_valid(self):
        make_profile()

    def test_no_content_types_rejected(self):
        with pytest.raises(ConfigError):
            make_profile(content_types=())

    def test_unknown_content_type_rejected(self):
        with pytest.raises(ConfigError):
            make_profile(content_types=("VIDEO",))

    @pytest.mark.parametrize(
        "field", ["page_coverage", "pattern_coverage", "wrong_predicate_rate",
                  "reliability_mean", "mangle_rate", "misgrab_rate"],
    )
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ConfigError):
            make_profile(**{field: 1.5})


@pytest.fixture
def text_extractor(small_world):
    profile = make_profile(name="T", page_coverage=0.5, site_categories=("wiki",))
    linker = EntityLinker("EL-A", small_world.entities, small_world.popularity, seed=1)
    templates = build_templates(small_world.schema)
    return TextExtractor(profile, small_world.schema, linker, templates, seed=1)


def page(url="http://wiki0.example.org/p1", category="wiki"):
    return WebPage(
        url=url,
        site=url.split("/")[2],
        category=category,
        assertions=(),
        elements=(),
    )


class TestCoverage:
    def test_category_restriction(self, text_extractor):
        assert not text_extractor.covers(page(category="general"))

    def test_coverage_deterministic(self, text_extractor):
        p = page()
        assert text_extractor.covers(p) == text_extractor.covers(p)

    def test_coverage_rate_respected(self, small_world):
        linker = EntityLinker(
            "EL-A", small_world.entities, small_world.popularity, seed=1
        )
        templates = build_templates(small_world.schema)
        profile = make_profile(name="half", page_coverage=0.5)
        extractor = TextExtractor(
            profile, small_world.schema, linker, templates, seed=1
        )
        covered = sum(
            extractor.covers(page(url=f"http://s.org/p{i}", category="general"))
            for i in range(400)
        )
        assert 120 <= covered <= 280  # ~50% with deterministic hash draws

    def test_full_coverage(self, small_world):
        linker = EntityLinker(
            "EL-A", small_world.entities, small_world.popularity, seed=1
        )
        templates = build_templates(small_world.schema)
        extractor = TextExtractor(
            make_profile(name="full"), small_world.schema, linker, templates, seed=1
        )
        assert all(
            extractor.covers(page(url=f"http://s.org/p{i}", category="general"))
            for i in range(50)
        )


class TestReliability:
    def test_reliability_deterministic(self, text_extractor):
        assert text_extractor.reliability_for("k") == text_extractor.reliability_for(
            "k"
        )

    def test_reliability_varies_by_key(self, text_extractor):
        values = {text_extractor.reliability_for(f"k{i}") for i in range(20)}
        assert len(values) > 10

    def test_reliability_in_unit_interval(self, text_extractor):
        for i in range(50):
            assert 0.0 <= text_extractor.reliability_for(f"k{i}") <= 1.0
