"""Unit tests for the extractor base class and profile validation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.extract.base import ExtractorProfile
from repro.extract.linkage import EntityLinker
from repro.extract.text import TextExtractor
from repro.kb.schema import Predicate, ValueKind
from repro.kb.values import StringValue
from repro.world.content import Mention
from repro.world.labels import build_templates
from repro.world.webgen import WebPage


def make_profile(**kwargs):
    defaults = dict(name="X", content_types=("TXT",))
    defaults.update(kwargs)
    return ExtractorProfile(**defaults)


class TestProfileValidation:
    def test_defaults_valid(self):
        make_profile()

    def test_no_content_types_rejected(self):
        with pytest.raises(ConfigError):
            make_profile(content_types=())

    def test_unknown_content_type_rejected(self):
        with pytest.raises(ConfigError):
            make_profile(content_types=("VIDEO",))

    @pytest.mark.parametrize(
        "field", ["page_coverage", "pattern_coverage", "wrong_predicate_rate",
                  "reliability_mean", "mangle_rate", "misgrab_rate"],
    )
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ConfigError):
            make_profile(**{field: 1.5})


@pytest.fixture
def text_extractor(small_world):
    profile = make_profile(name="T", page_coverage=0.5, site_categories=("wiki",))
    linker = EntityLinker("EL-A", small_world.entities, small_world.popularity, seed=1)
    templates = build_templates(small_world.schema)
    return TextExtractor(profile, small_world.schema, linker, templates, seed=1)


def page(url="http://wiki0.example.org/p1", category="wiki"):
    return WebPage(
        url=url,
        site=url.split("/")[2],
        category=category,
        assertions=(),
        elements=(),
    )


class TestCoverage:
    def test_category_restriction(self, text_extractor):
        assert not text_extractor.covers(page(category="general"))

    def test_coverage_deterministic(self, text_extractor):
        p = page()
        assert text_extractor.covers(p) == text_extractor.covers(p)

    def test_coverage_rate_respected(self, small_world):
        linker = EntityLinker(
            "EL-A", small_world.entities, small_world.popularity, seed=1
        )
        templates = build_templates(small_world.schema)
        profile = make_profile(name="half", page_coverage=0.5)
        extractor = TextExtractor(
            profile, small_world.schema, linker, templates, seed=1
        )
        covered = sum(
            extractor.covers(page(url=f"http://s.org/p{i}", category="general"))
            for i in range(400)
        )
        assert 120 <= covered <= 280  # ~50% with deterministic hash draws

    def test_full_coverage(self, small_world):
        linker = EntityLinker(
            "EL-A", small_world.entities, small_world.popularity, seed=1
        )
        templates = build_templates(small_world.schema)
        extractor = TextExtractor(
            make_profile(name="full"), small_world.schema, linker, templates, seed=1
        )
        assert all(
            extractor.covers(page(url=f"http://s.org/p{i}", category="general"))
            for i in range(50)
        )


class TestCoverageMask:
    def test_matches_per_page_covers(self, small_world):
        linker = EntityLinker(
            "EL-A", small_world.entities, small_world.popularity, seed=1
        )
        templates = build_templates(small_world.schema)
        profile = make_profile(
            name="half", page_coverage=0.5, site_categories=("wiki", "news")
        )
        extractor = TextExtractor(
            profile, small_world.schema, linker, templates, seed=1
        )
        categories = ["wiki", "news", "general"]
        pages = [
            page(url=f"http://s.org/p{i}", category=categories[i % 3])
            for i in range(300)
        ]
        mask = extractor.coverage_mask(pages)
        assert mask.dtype == np.bool_
        assert list(mask) == [extractor.covers(p) for p in pages]

    def test_full_coverage_no_category_filter(self, small_world):
        linker = EntityLinker(
            "EL-A", small_world.entities, small_world.popularity, seed=1
        )
        templates = build_templates(small_world.schema)
        extractor = TextExtractor(
            make_profile(name="full"), small_world.schema, linker, templates, seed=1
        )
        pages = [page(url=f"http://s.org/p{i}", category="general") for i in range(20)]
        assert extractor.coverage_mask(pages).all()

    def test_empty_page_list(self, text_extractor):
        mask = text_extractor.coverage_mask([])
        assert mask.dtype == np.bool_
        assert mask.shape == (0,)


def emit_extractor(small_world, **profile_kwargs):
    linker = EntityLinker("EL-A", small_world.entities, small_world.popularity, seed=1)
    templates = build_templates(small_world.schema)
    profile = make_profile(**profile_kwargs)
    return TextExtractor(profile, small_world.schema, linker, templates, seed=1)


STRING_PREDICATE = Predicate(
    pid="t/thing/motto", type_id="t/thing", value_kind=ValueKind.STRING
)
ENTITY_PREDICATE = Predicate(
    pid="t/thing/maker",
    type_id="t/thing",
    value_kind=ValueKind.ENTITY,
    object_type_id="t/thing",
)


class TestEmitStringFallback:
    """A kind-checking extractor with a string-valued predicate must emit
    an entity mention's raw surface as the fallback (regression: the
    fallback arm was unreachable — the kind check fired first)."""

    def emit(self, small_world, predicate, **profile_kwargs):
        extractor = emit_extractor(small_world, **profile_kwargs)
        return extractor.emit(
            page=page(),
            subject_id="/m/1",
            predicate=predicate,
            mention=Mention(surface="No Such Entity Anywhere", kind="entity", fact_ref=0),
            rng=np.random.default_rng(0),
            pattern=None,
            reliability=1.0,
        )

    def test_kind_checked_string_predicate_takes_fallback(self, small_world):
        record = self.emit(
            small_world,
            STRING_PREDICATE,
            kind_checking=True,
            string_fallback=True,
        )
        assert record is not None
        assert record.triple.obj == StringValue("No Such Entity Anywhere")

    def test_kind_checked_string_predicate_without_fallback_skips(self, small_world):
        record = self.emit(
            small_world,
            STRING_PREDICATE,
            kind_checking=True,
            string_fallback=False,
        )
        assert record is None

    def test_kind_checker_never_downgrades_entity_predicate(self, small_world):
        record = self.emit(
            small_world,
            ENTITY_PREDICATE,
            kind_checking=True,
            string_fallback=True,
        )
        assert record is None

    def test_unchecked_extractor_still_falls_back(self, small_world):
        record = self.emit(
            small_world,
            ENTITY_PREDICATE,
            kind_checking=False,
            string_fallback=True,
        )
        assert record is not None
        assert record.triple.obj == StringValue("No Such Entity Anywhere")


class TestEmitMisgrabPool:
    """The misgrab pool must exclude value-equal duplicates of the grabbed
    mention (regression: identity filtering let a duplicate re-render of
    the same fact be 'misgrabbed', flagging slot_mismatch on a correct
    extraction)."""

    def emit(self, small_world, mention, alternates):
        extractor = emit_extractor(
            small_world, kind_checking=False, misgrab_rate=1.0
        )
        return extractor.emit(
            page=page(),
            subject_id="/m/1",
            predicate=STRING_PREDICATE,
            mention=mention,
            rng=np.random.default_rng(0),
            pattern=None,
            reliability=0.0,  # misgrab probability = rate * (1 - reliability) = 1
            alternates=alternates,
        )

    def test_value_equal_duplicate_not_misgrabbed(self, small_world):
        mention = Mention(surface="Twice Rendered", kind="string", fact_ref=3)
        duplicate = Mention(surface="Twice Rendered", kind="string", fact_ref=3)
        assert duplicate is not mention and duplicate == mention
        record = self.emit(small_world, mention, alternates=(duplicate,))
        assert record is not None
        assert record.debug.slot_mismatch is False
        assert record.debug.asserted_index == 3

    def test_same_surface_other_fact_not_misgrabbed(self, small_world):
        # A *different* fact sharing the surface (birth and death city both
        # "Paris") would also reproduce the correct triple — grabbing it
        # must not flag slot_mismatch either.
        mention = Mention(surface="Paris", kind="string", fact_ref=3)
        other_fact = Mention(surface="Paris", kind="string", fact_ref=7)
        record = self.emit(small_world, mention, alternates=(other_fact,))
        assert record is not None
        assert record.debug.slot_mismatch is False
        assert record.debug.asserted_index == 3

    def test_distinct_mention_still_misgrabbed(self, small_world):
        mention = Mention(surface="Right Value", kind="string", fact_ref=3)
        other = Mention(surface="Wrong Value", kind="string", fact_ref=4)
        record = self.emit(small_world, mention, alternates=(other,))
        assert record is not None
        assert record.debug.slot_mismatch is True
        assert record.debug.asserted_index == 4


class TestReliability:
    def test_reliability_deterministic(self, text_extractor):
        assert text_extractor.reliability_for("k") == text_extractor.reliability_for(
            "k"
        )

    def test_reliability_varies_by_key(self, text_extractor):
        values = {text_extractor.reliability_for(f"k{i}") for i in range(20)}
        assert len(values) > 10

    def test_reliability_in_unit_interval(self, text_extractor):
        for i in range(50):
            assert 0.0 <= text_extractor.reliability_for(f"k{i}") <= 1.0
