"""Unit tests for the confidence models."""

import numpy as np
import pytest

from repro.extract.confidence import make_confidence_model


@pytest.fixture
def rng():
    return np.random.default_rng(0)


ALL_MODELS = ["calibrated", "extreme", "centered", "peaked", "uninformative"]


class TestFactory:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_known_models(self, name):
        assert make_confidence_model(name) is not None

    def test_none_model(self):
        assert make_confidence_model("none") is None

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            make_confidence_model("psychic")


class TestRange:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_output_in_unit_interval(self, name, rng):
        model = make_confidence_model(name)
        for signal in np.linspace(0, 1, 21):
            for _ in range(10):
                value = model.transform(float(signal), rng)
                assert 0.0 <= value <= 1.0


class TestShapes:
    def _mean_response(self, model, signal, rng, n=300):
        return float(np.mean([model.transform(signal, rng) for _ in range(n)]))

    def test_calibrated_tracks_signal(self, rng):
        model = make_confidence_model("calibrated")
        assert self._mean_response(model, 0.9, rng) > self._mean_response(
            model, 0.1, rng
        )

    def test_extreme_pushes_outward(self, rng):
        model = make_confidence_model("extreme")
        assert self._mean_response(model, 0.9, rng) > 0.9
        assert self._mean_response(model, 0.1, rng) < 0.1

    def test_centered_compresses(self, rng):
        model = make_confidence_model("centered")
        assert 0.5 < self._mean_response(model, 1.0, rng) < 0.75
        assert 0.25 < self._mean_response(model, 0.0, rng) < 0.5

    def test_peaked_is_highest_mid_signal(self, rng):
        model = make_confidence_model("peaked")
        mid = self._mean_response(model, 0.55, rng)
        low = self._mean_response(model, 0.05, rng)
        high = self._mean_response(model, 1.0, rng)
        assert mid > low and mid > high

    def test_uninformative_ignores_signal(self, rng):
        model = make_confidence_model("uninformative")
        low = self._mean_response(model, 0.0, rng, n=2000)
        high = self._mean_response(model, 1.0, rng, n=2000)
        assert abs(low - high) < 0.08
