"""Unit tests for extraction records and the debug channel."""

from repro.extract.records import ErrorKind, ExtractionDebug, ExtractionRecord
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def make_record(**kwargs):
    defaults = dict(
        triple=Triple("/m/1", "p/t/a", StringValue("x")),
        extractor="TXT1",
        url="http://s.org/p1",
        site="s.org",
        content_type="TXT",
        pattern="TXT1:t.p",
        confidence=0.7,
        debug=ExtractionDebug(asserted_index=0),
    )
    defaults.update(kwargs)
    return ExtractionRecord(**defaults)


class TestWithoutDebug:
    def test_strips_debug(self):
        record = make_record()
        public = record.without_debug()
        assert public.debug is None
        assert public.triple == record.triple
        assert public.confidence == record.confidence

    def test_noop_when_already_stripped(self):
        record = make_record(debug=None)
        assert record.without_debug() is record


class TestErrorFlags:
    def test_extraction_error_flag(self):
        record = make_record(
            debug=ExtractionDebug(
                asserted_index=0, error_kind=ErrorKind.ENTITY_LINKAGE
            )
        )
        assert record.is_extraction_error
        assert not record.is_source_error

    def test_source_error_flag(self):
        record = make_record(
            debug=ExtractionDebug(asserted_index=0, source_error=True)
        )
        assert record.is_source_error
        assert not record.is_extraction_error

    def test_clean_record(self):
        record = make_record()
        assert not record.is_extraction_error
        assert not record.is_source_error

    def test_flags_false_without_debug(self):
        record = make_record(debug=None)
        assert not record.is_extraction_error
        assert not record.is_source_error


class TestErrorKinds:
    def test_three_paper_categories(self):
        assert {k.value for k in ErrorKind} == {
            "triple_identification",
            "entity_linkage",
            "predicate_linkage",
        }
