"""Unit tests for extraction records and the debug channel."""

from repro.extract.records import (
    ErrorKind,
    ExtractionDebug,
    ExtractionRecord,
    records_from_wire,
    records_to_wire,
)
from repro.kb.triples import Triple
from repro.kb.values import DateValue, EntityRef, NumberValue, StringValue


def make_record(**kwargs):
    defaults = dict(
        triple=Triple("/m/1", "p/t/a", StringValue("x")),
        extractor="TXT1",
        url="http://s.org/p1",
        site="s.org",
        content_type="TXT",
        pattern="TXT1:t.p",
        confidence=0.7,
        debug=ExtractionDebug(asserted_index=0),
    )
    defaults.update(kwargs)
    return ExtractionRecord(**defaults)


class TestWithoutDebug:
    def test_strips_debug(self):
        record = make_record()
        public = record.without_debug()
        assert public.debug is None
        assert public.triple == record.triple
        assert public.confidence == record.confidence

    def test_noop_when_already_stripped(self):
        record = make_record(debug=None)
        assert record.without_debug() is record


class TestErrorFlags:
    def test_extraction_error_flag(self):
        record = make_record(
            debug=ExtractionDebug(
                asserted_index=0, error_kind=ErrorKind.ENTITY_LINKAGE
            )
        )
        assert record.is_extraction_error
        assert not record.is_source_error

    def test_source_error_flag(self):
        record = make_record(
            debug=ExtractionDebug(asserted_index=0, source_error=True)
        )
        assert record.is_source_error
        assert not record.is_extraction_error

    def test_clean_record(self):
        record = make_record()
        assert not record.is_extraction_error
        assert not record.is_source_error

    def test_flags_false_without_debug(self):
        record = make_record(debug=None)
        assert not record.is_extraction_error
        assert not record.is_source_error


class TestWireFormat:
    """The compact tuple codec used to ship shard outputs between
    processes must round-trip records exactly."""

    def test_round_trip_all_value_kinds(self):
        records = [
            make_record(),
            make_record(triple=Triple("/m/2", "p/t/b", EntityRef("/m/9"))),
            make_record(triple=Triple("/m/3", "p/t/c", NumberValue(1986.5))),
            make_record(triple=Triple("/m/4", "p/t/d", DateValue("1962-07-03"))),
            make_record(pattern=None, confidence=None),
            make_record(debug=None),
            make_record(
                debug=ExtractionDebug(
                    asserted_index=None,
                    error_kind=ErrorKind.TRIPLE_IDENTIFICATION,
                    source_error=False,
                    span_corrupted=True,
                    slot_mismatch=True,
                )
            ),
        ]
        assert records_from_wire(records_to_wire(records)) == records

    def test_wire_is_flat_tuples(self):
        wire = records_to_wire([make_record()])
        assert isinstance(wire[0], tuple)
        assert all(
            item is None or isinstance(item, (str, int, float, bool, tuple))
            for item in wire[0]
        )


class TestErrorKinds:
    def test_three_paper_categories(self):
        assert {k.value for k in ErrorKind} == {
            "triple_identification",
            "entity_linkage",
            "predicate_linkage",
        }
