"""Test package: extract (package __init__ so duplicate basenames import distinctly)."""
