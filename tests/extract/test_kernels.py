"""Unit tests for the batched extraction-error classification kernel.

:func:`repro.extract.kernels.classify_batch` annotates records in place
and must agree with the scalar reference
(:func:`repro.extract.pipeline.classify_record`) bit-for-bit — the
parity tests here compare full records, never just the error kinds.
"""

import pytest

from repro.errors import ExtractionError
from repro.extract.kernels import classify_batch
from repro.extract.pipeline import classify_record
from repro.extract.records import ErrorKind, ExtractionDebug, ExtractionRecord
from repro.kb.triples import Triple
from repro.kb.values import EntityRef, StringValue
from repro.world.facts import SourceAssertion
from repro.world.webgen import WebPage

ASSERTED = Triple("/m/1", "t/t/p", EntityRef("/m/2"))
OTHER = Triple("/m/1", "t/t/q", EntityRef("/m/3"))


def make_page(url="http://s.org/p", assertions=None, source_error=False):
    if assertions is None:
        assertions = (
            SourceAssertion(
                triple=ASSERTED, true_in_world=not source_error, exact=True
            ),
        )
    return WebPage(
        url=url,
        site="s.org",
        category="general",
        assertions=assertions,
        elements=(),
    )


def make_record(triple, **debug_kwargs):
    return ExtractionRecord(
        triple=triple,
        extractor="X",
        url="http://s.org/p",
        site="s.org",
        content_type="DOM",
        debug=ExtractionDebug(**debug_kwargs),
    )


def branch_batches(source_error=False):
    """One page exercising all five branches of the classification."""
    page = make_page(source_error=source_error)
    records = [
        make_record(ASSERTED, asserted_index=0),  # exact match
        make_record(ASSERTED, asserted_index=None),  # fabricated
        make_record(ASSERTED, asserted_index=0, span_corrupted=True),
        make_record(OTHER, asserted_index=0, slot_mismatch=True),
        make_record(  # wrong predicate, same slot
            Triple("/m/1", "t/t/q", EntityRef("/m/2")), asserted_index=0
        ),
        make_record(  # right predicate, wrong entity
            Triple("/m/1", "t/t/p", EntityRef("/m/9")), asserted_index=0
        ),
        make_record(  # unlinkable mention emitted as a raw string
            Triple("/m/1", "t/t/p", StringValue("who?")), asserted_index=0
        ),
    ]
    return [(page, records)]


class TestClassifyBatch:
    def test_empty_input(self):
        assert classify_batch([]) == 0
        assert classify_batch([(make_page(), [])]) == 0

    def test_stripped_debug_rejected(self):
        page = make_page()
        record = ExtractionRecord(
            triple=ASSERTED,
            extractor="X",
            url=page.url,
            site=page.site,
            content_type="DOM",
            debug=None,
        )
        with pytest.raises(ExtractionError, match="debug channel"):
            classify_batch([(page, [record])])

    @pytest.mark.parametrize("source_error", [False, True])
    def test_branches_match_scalar_reference(self, source_error):
        batches = branch_batches(source_error=source_error)
        expected = [
            classify_record(record, page)
            for page, records in branch_batches(source_error=source_error)
            for record in records
        ]
        changed = classify_batch(batches)
        annotated = [record for _page, records in batches for record in records]
        assert annotated == expected
        kinds = [record.debug.error_kind for record in annotated]
        assert kinds == [
            None,
            ErrorKind.TRIPLE_IDENTIFICATION,
            ErrorKind.TRIPLE_IDENTIFICATION,
            ErrorKind.TRIPLE_IDENTIFICATION,
            ErrorKind.PREDICATE_LINKAGE,
            ErrorKind.ENTITY_LINKAGE,
            ErrorKind.ENTITY_LINKAGE,
        ]
        assert [record.debug.source_error for record in annotated] == [
            source_error, False, False, False, False, False, False,
        ]
        assert changed == 6 + source_error  # every record but the clean one

    def test_second_pass_is_a_no_op(self):
        batches = branch_batches()
        assert classify_batch(batches) > 0
        snapshot = [record for _page, records in batches for record in records]
        assert classify_batch(batches) == 0
        assert [record for _page, records in batches for record in records] == snapshot

    def test_page_without_assertions(self):
        page = make_page(assertions=())
        record = make_record(ASSERTED, asserted_index=None)
        classify_batch([(page, [record])])
        assert record.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION

    def test_multi_page_offsets(self):
        # Same asserted_index on different pages must resolve against
        # each page's own assertion, not a shared table row.
        page_a = make_page(url="http://s.org/a")
        page_b = make_page(
            url="http://s.org/b",
            assertions=(
                SourceAssertion(triple=OTHER, true_in_world=True, exact=True),
            ),
        )
        record_a = make_record(ASSERTED, asserted_index=0)
        record_b = make_record(ASSERTED, asserted_index=0)
        classify_batch([(page_a, [record_a]), (page_b, [record_b])])
        assert record_a.debug.error_kind is None
        assert record_b.debug.error_kind is ErrorKind.PREDICATE_LINKAGE


def synthesize(scenario):
    """Fresh unclassified records from the scenario's fleet, per page."""
    pages = list(scenario.corpus.pages)
    extractors = scenario.pipeline.extractors
    masks = [extractor.coverage_mask(pages) for extractor in extractors]
    per_page = []
    for index, page in enumerate(pages):
        records = []
        for extractor, mask in zip(extractors, masks):
            if mask[index]:
                records.extend(extractor.extract_page(page))
        per_page.append(records)
    return pages, per_page


class TestFleetParity:
    def test_kernel_matches_scalar_on_full_fleet(self, tiny_scenario):
        pages, per_page = synthesize(tiny_scenario)
        # The reference runs on an independently synthesized (bit-identical)
        # set: classify_record returns the *same* object on the no-change
        # path, and comparing against aliases of records the kernel just
        # mutated would vacuously pass.
        _pages, reference = synthesize(tiny_scenario)
        expected = [
            classify_record(record, page)
            for page, records in zip(pages, reference)
            for record in records
        ]
        classify_batch(list(zip(pages, per_page)))
        annotated = [record for records in per_page for record in records]
        assert annotated == expected
        # ... and both equal what the pipeline itself produced.
        assert annotated == tiny_scenario.records
