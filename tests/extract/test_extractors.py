"""Behavioural tests for the four extractor families.

The key invariant: a *perfect-knob* extractor run over a corpus whose
entities have unambiguous names reproduces the pages' assertions exactly —
every error downstream is therefore attributable to a deliberately-enabled
noise mechanism.
"""

import pytest

from repro.extract.annotation import AnnotationExtractor
from repro.extract.base import ExtractorProfile
from repro.extract.dom import DomExtractor
from repro.extract.linkage import EntityLinker
from repro.extract.table import TableExtractor
from repro.extract.text import TextExtractor
from repro.world.config import WebConfig, WorldConfig
from repro.world.labels import build_templates
from repro.world.webgen import generate_corpus
from repro.world.worldgen import generate_world

PERFECT = dict(
    page_coverage=1.0,
    use_type_hints=True,
    kind_checking=True,
    handles_merged=True,
    naive_dates=False,
    string_fallback=False,
    pattern_coverage=1.0,
    wrong_predicate_rate=0.0,
    reliability_mean=0.95,
    reliability_concentration=50.0,
    mangle_rate=0.0,
    misgrab_rate=0.0,
    confidence="calibrated",
)


@pytest.fixture(scope="module")
def clean_world():
    """A world with no aliases at all: every surface is unambiguous.

    ``alias_rate=0`` matters too — even honest aliases collide ("Acme
    Industries" and "Zork Industries" both answer to "Industries").
    """
    return generate_world(
        WorldConfig(
            n_types=12, n_entities=180, confusable_rate=0.0, alias_rate=0.0
        ),
        seed=13,
    )


@pytest.fixture(scope="module")
def clean_corpus(clean_world):
    # A table-heavy mix so the table extractors get real work; the default
    # mix renders almost no tables (matching the paper's tiny TBL share)
    # which would starve the faithfulness checks.
    return generate_corpus(
        clean_world,
        WebConfig(
            n_sites=15,
            n_pages=120,
            content_mix={"DOM": 0.4, "TXT": 0.3, "TBL": 0.2, "ANO": 0.1},
        ),
        seed=13,
    )


@pytest.fixture(scope="module")
def linker(clean_world):
    return EntityLinker("EL-A", clean_world.entities, clean_world.popularity, seed=13)


def perfect_extractor(family, name, content, clean_world, linker, **extra):
    profile = ExtractorProfile(
        name=name, content_types=content, **{**PERFECT, **extra}
    )
    if family is TextExtractor:
        templates = build_templates(clean_world.schema)
        return TextExtractor(profile, clean_world.schema, linker, templates, seed=13)
    return family(profile, clean_world.schema, linker, seed=13)


def assert_faithful(extractor, corpus):
    """Every record of a perfect extractor equals its source assertion."""
    total = 0
    for page in corpus.pages:
        for record in extractor.extract_page(page):
            total += 1
            assert record.debug is not None
            index = record.debug.asserted_index
            assert index is not None
            assert record.triple == page.assertions[index].triple, (
                record.triple.canonical(),
                page.assertions[index].triple.canonical(),
            )
    assert total > 20  # the extractor actually extracted things


class TestPerfectExtractorsAreFaithful:
    def test_text(self, clean_world, clean_corpus, linker):
        extractor = perfect_extractor(
            TextExtractor, "TXTP", ("TXT",), clean_world, linker
        )
        assert_faithful(extractor, clean_corpus)

    def test_dom(self, clean_world, clean_corpus, linker):
        extractor = perfect_extractor(
            DomExtractor, "DOMP", ("DOM",), clean_world, linker
        )
        assert_faithful(extractor, clean_corpus)

    def test_table(self, clean_world, clean_corpus, linker):
        extractor = perfect_extractor(
            TableExtractor,
            "TBLP",
            ("TBL",),
            clean_world,
            linker,
            detect_subject_col=True,
            type_aware_headers=True,
        )
        assert_faithful(extractor, clean_corpus)

    def test_annotation(self, clean_world, clean_corpus, linker):
        """ANO is faithful *except* for cross-type itemprop collisions:
        ``releaseYear`` names both the film and the album predicate, and
        the ontology map — global by design, like schema.org's namespace —
        can keep only one."""
        extractor = perfect_extractor(
            AnnotationExtractor, "ANOP", ("ANO",), clean_world, linker
        )
        total = 0
        for page in clean_corpus.pages:
            for record in extractor.extract_page(page):
                total += 1
                asserted = page.assertions[record.debug.asserted_index].triple
                if record.triple == asserted:
                    continue
                # The only tolerated divergence: same predicate *name*,
                # different type (the itemprop collision).
                assert record.triple.subject == asserted.subject
                assert record.triple.obj == asserted.obj
                assert (
                    record.triple.predicate.rsplit("/", 1)[-1]
                    == asserted.predicate.rsplit("/", 1)[-1]
                )
        assert total > 20


class TestNoiseMechanisms:
    def test_misgrab_produces_mismatches(self, clean_world, clean_corpus, linker):
        extractor = perfect_extractor(
            DomExtractor,
            "DOMN",
            ("DOM",),
            clean_world,
            linker,
            kind_checking=False,
            misgrab_rate=1.0,
            reliability_mean=0.2,
            reliability_concentration=30.0,
        )
        mismatches = 0
        for page in clean_corpus.pages:
            for record in extractor.extract_page(page):
                index = record.debug.asserted_index
                if index is None or record.triple != page.assertions[index].triple:
                    mismatches += 1
        assert mismatches > 0

    def test_wrong_predicate_rate_changes_patterns(self, clean_world, linker):
        templates = build_templates(clean_world.schema)
        wrong = ExtractorProfile(
            name="TXTW",
            content_types=("TXT",),
            **{**PERFECT, "wrong_predicate_rate": 1.0},
        )
        extractor = TextExtractor(
            wrong, clean_world.schema, linker, templates, seed=13
        )
        flipped = [
            p
            for tid, p in extractor.patterns.items()
            if p.predicate != templates[tid].slots[0]
        ]
        assert flipped  # with rate 1.0 every confusable pattern flips

    def test_pattern_coverage_limits_library(self, clean_world, linker):
        templates = build_templates(clean_world.schema)
        half = ExtractorProfile(
            name="TXTH",
            content_types=("TXT",),
            **{**PERFECT, "pattern_coverage": 0.5},
        )
        extractor = TextExtractor(half, clean_world.schema, linker, templates, seed=13)
        assert 0 < extractor.n_patterns < len(templates)

    def test_no_confidence_model_emits_none(self, clean_world, clean_corpus, linker):
        extractor = perfect_extractor(
            DomExtractor, "DOMC", ("DOM",), clean_world, linker, confidence="none"
        )
        records = extractor.extract_corpus(clean_corpus)
        assert records
        assert all(r.confidence is None for r in records)
        # extract_corpus classifies like the pipeline: a perfect extractor
        # on a clean corpus carries only clean debug channels.
        assert all(r.debug is not None and r.debug.error_kind is None for r in records)

    def test_value_kind_restriction(self, clean_world, clean_corpus, linker):
        from repro.kb.values import EntityRef

        extractor = perfect_extractor(
            DomExtractor,
            "DOME",
            ("DOM",),
            clean_world,
            linker,
            value_kinds=("entity",),
        )
        records = extractor.extract_corpus(clean_corpus)
        assert records
        assert all(isinstance(r.triple.obj, EntityRef) for r in records)
        assert all(r.debug is not None and r.debug.error_kind is None for r in records)

    def test_extract_corpus_classifies_like_pipeline(
        self, clean_world, clean_corpus, linker
    ):
        """Regression: extract_corpus used to skip classify_record, so its
        debug channels silently carried error_kind=None everywhere."""
        from repro.extract.pipeline import classify_record

        extractor = perfect_extractor(
            DomExtractor,
            "DOMM",
            ("DOM",),
            clean_world,
            linker,
            kind_checking=False,
            misgrab_rate=1.0,
            reliability_mean=0.2,
            reliability_concentration=30.0,
        )
        records = extractor.extract_corpus(clean_corpus)
        assert records
        pages = {page.url: page for page in clean_corpus.pages}
        reclassified = [classify_record(r, pages[r.url]) for r in records]
        assert records == reclassified  # classification is idempotent
        # A misgrab-heavy extractor must surface concrete error kinds.
        assert any(r.debug.error_kind is not None for r in records)


class TestDomSpecifics:
    def test_global_label_map_confuses_publisher(self, clean_world, linker):
        schema = clean_world.schema
        if (
            "games/game/game_publisher" not in schema.predicates
            or "book/book/publisher" not in schema.predicates
        ):
            pytest.skip("needs both publisher predicates")
        extractor = perfect_extractor(
            DomExtractor, "DOMG", ("DOM",), clean_world, linker, global_label_map=True
        )
        # The global map can hold only one "Publisher" entry.
        pid = extractor._resolve_label("Publisher", "games/game")
        assert pid == "book/book/publisher"

    def test_typed_label_map_disambiguates(self, clean_world, linker):
        schema = clean_world.schema
        if "games/game/game_publisher" not in schema.predicates:
            pytest.skip("needs games type")
        extractor = perfect_extractor(
            DomExtractor, "DOMT", ("DOM",), clean_world, linker
        )
        pid = extractor._resolve_label("Publisher", "games/game")
        assert pid == "games/game/game_publisher"


class TestTableSpecifics:
    def test_naive_misses_offset_subject_tables(self, clean_world, clean_corpus, linker):
        from repro.world.content import WebTable

        naive = perfect_extractor(
            TableExtractor,
            "TBLN",
            ("TBL",),
            clean_world,
            linker,
            detect_subject_col=False,
            type_aware_headers=False,
            kind_checking=False,
        )
        smart = perfect_extractor(
            TableExtractor,
            "TBLS",
            ("TBL",),
            clean_world,
            linker,
            detect_subject_col=True,
            type_aware_headers=True,
        )
        offset_pages = [
            page
            for page in clean_corpus.pages
            if any(
                isinstance(e, WebTable) and e.subject_col == 1 for e in page.elements
            )
        ]
        if not offset_pages:
            pytest.skip("no offset-subject tables rendered in this corpus")
        naive_records = [r for p in offset_pages for r in naive.extract_page(p)]
        smart_records = [r for p in offset_pages for r in smart.extract_page(p)]
        assert len(smart_records) > len(naive_records)
