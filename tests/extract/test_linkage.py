"""Unit tests for the shared entity linkers."""

import pytest

from repro.extract.linkage import EntityLinker
from repro.kb.entities import Entity, EntityRegistry


@pytest.fixture
def registry():
    reg = EntityRegistry()
    reg.add(Entity("/m/book", ("book/book",), "Les Miserables"))
    reg.add(
        Entity(
            "/m/show",
            ("theater/show",),
            "Les Miserables Show",
            aliases=("Les Miserables",),
        )
    )
    reg.add(Entity("/m/tom", ("people/person",), "Tom Cruise"))
    return reg


def make_linker(registry, name="EL-A", popularity=None):
    return EntityLinker(
        name=name,
        registry=registry,
        popularity=popularity or {"/m/book": 0.9, "/m/show": 0.1, "/m/tom": 0.5},
        seed=1,
    )


class TestResolution:
    def test_unambiguous_surface(self, registry):
        assert make_linker(registry).resolve("Tom Cruise") == "/m/tom"

    def test_unknown_surface_is_none(self, registry):
        assert make_linker(registry).resolve("Nobody Special") is None

    def test_ambiguous_surface_resolves_deterministically(self, registry):
        linker = make_linker(registry)
        first = linker.resolve("Les Miserables")
        assert first in {"/m/book", "/m/show"}
        for _ in range(5):
            assert linker.resolve("Les Miserables") == first

    def test_type_hint_filters_candidates(self, registry):
        linker = make_linker(registry)
        assert linker.resolve("Les Miserables", type_hint="theater/show") == "/m/show"
        assert linker.resolve("Les Miserables", type_hint="book/book") == "/m/book"

    def test_type_hint_can_eliminate_all(self, registry):
        assert (
            make_linker(registry).resolve("Tom Cruise", type_hint="book/book") is None
        )

    def test_popularity_dominates_for_lopsided_priors(self, registry):
        linker = make_linker(
            registry, popularity={"/m/book": 100.0, "/m/show": 0.001, "/m/tom": 1.0}
        )
        assert linker.resolve("Les Miserables") == "/m/book"


class TestSharedMistakes:
    def test_same_linker_name_same_answers(self, registry):
        a = make_linker(registry, "EL-A")
        b = make_linker(registry, "EL-A")
        assert a.resolve("Les Miserables") == b.resolve("Les Miserables")

    def test_different_linkers_can_disagree_somewhere(self):
        # Build many ambiguous surfaces with near-equal popularity; the two
        # linkers' biases must disagree on at least one of them.
        registry = EntityRegistry()
        popularity = {}
        for i in range(40):
            a, b = f"/m/a{i}", f"/m/b{i}"
            registry.add(Entity(a, ("t/t",), f"Name{i}"))
            registry.add(Entity(b, ("t/t",), f"Other{i}", aliases=(f"Name{i}",)))
            popularity[a] = 1.0
            popularity[b] = 1.0
        el_a = EntityLinker("EL-A", registry, popularity, seed=1)
        el_b = EntityLinker("EL-B", registry, popularity, seed=1)
        answers_a = [el_a.resolve(f"Name{i}") for i in range(40)]
        answers_b = [el_b.resolve(f"Name{i}") for i in range(40)]
        assert answers_a != answers_b


class TestAmbiguity:
    def test_ambiguity_counts_candidates(self, registry):
        linker = make_linker(registry)
        assert linker.ambiguity("Les Miserables") == 2
        assert linker.ambiguity("Tom Cruise") == 1
        assert linker.ambiguity("Nobody") == 0

    def test_ambiguity_respects_hint(self, registry):
        linker = make_linker(registry)
        assert linker.ambiguity("Les Miserables", type_hint="book/book") == 1
