"""Unit tests for the extraction pipeline and error classification."""

import pytest

from repro.errors import ExtractionError
from repro.extract.pipeline import ExtractionPipeline, classify_record
from repro.extract.records import ErrorKind, ExtractionDebug, ExtractionRecord
from repro.kb.triples import Triple
from repro.kb.values import EntityRef, StringValue
from repro.world.facts import SourceAssertion
from repro.world.webgen import WebPage

ASSERTED = Triple("/m/1", "t/t/p", EntityRef("/m/2"))


def make_page(source_error=False):
    return WebPage(
        url="http://s.org/p",
        site="s.org",
        category="general",
        assertions=(
            SourceAssertion(
                triple=ASSERTED, true_in_world=not source_error, exact=True
            ),
        ),
        elements=(),
    )


def make_record(triple, **debug_kwargs):
    return ExtractionRecord(
        triple=triple,
        extractor="X",
        url="http://s.org/p",
        site="s.org",
        content_type="DOM",
        debug=ExtractionDebug(**debug_kwargs),
    )


class TestClassification:
    def test_exact_match_is_clean(self):
        record = classify_record(make_record(ASSERTED, asserted_index=0), make_page())
        assert record.debug.error_kind is None
        assert record.debug.source_error is False

    def test_exact_match_carries_source_error(self):
        record = classify_record(
            make_record(ASSERTED, asserted_index=0), make_page(source_error=True)
        )
        assert record.debug.error_kind is None
        assert record.debug.source_error is True

    def test_fabricated_mention_is_triple_identification(self):
        record = classify_record(
            make_record(ASSERTED, asserted_index=None), make_page()
        )
        assert record.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION

    def test_span_corruption_is_triple_identification(self):
        wrong = Triple("/m/1", "t/t/p", StringValue("Mapother"))
        record = classify_record(
            make_record(wrong, asserted_index=0, span_corrupted=True), make_page()
        )
        assert record.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION

    def test_slot_mismatch_is_triple_identification(self):
        wrong = Triple("/m/1", "t/t/q", EntityRef("/m/2"))
        record = classify_record(
            make_record(wrong, asserted_index=0, slot_mismatch=True), make_page()
        )
        assert record.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION

    def test_predicate_change_is_predicate_linkage(self):
        wrong = Triple("/m/1", "t/t/other", EntityRef("/m/2"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.PREDICATE_LINKAGE

    def test_wrong_entity_is_entity_linkage(self):
        wrong = Triple("/m/1", "t/t/p", EntityRef("/m/999"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.ENTITY_LINKAGE

    def test_string_fallback_is_entity_linkage(self):
        wrong = Triple("/m/1", "t/t/p", StringValue("Some Surface"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.ENTITY_LINKAGE

    def test_wrong_subject_is_entity_linkage(self):
        wrong = Triple("/m/777", "t/t/p", EntityRef("/m/2"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.ENTITY_LINKAGE

    def test_error_implies_no_source_error_attribution(self):
        wrong = Triple("/m/1", "t/t/p", EntityRef("/m/999"))
        record = classify_record(
            make_record(wrong, asserted_index=0), make_page(source_error=True)
        )
        assert record.debug.source_error is False

    def test_stripped_debug_rejected(self):
        record = make_record(ASSERTED, asserted_index=0).without_debug()
        with pytest.raises(ExtractionError):
            classify_record(record, make_page())

    def test_already_correct_returns_same_object(self):
        # Fresh exact-match records carry the right channel already
        # (error_kind=None, source_error=False): no copies on this path.
        fresh = make_record(ASSERTED, asserted_index=0)
        assert classify_record(fresh, make_page()) is fresh
        # Re-classifying an annotated record is also copy-free.
        annotated = classify_record(
            make_record(ASSERTED, asserted_index=None), make_page()
        )
        assert annotated.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION
        assert classify_record(annotated, make_page()) is annotated

    def test_changed_classification_returns_new_record(self):
        record = make_record(ASSERTED, asserted_index=None)
        classified = classify_record(record, make_page())
        assert classified is not record
        assert record.debug.error_kind is None  # the input is untouched


class TestPipeline:
    def test_runs_all_extractors(self, tiny_scenario):
        names = {r.extractor for r in tiny_scenario.records}
        # Wiki-only extractors may be absent if the tiny corpus rendered no
        # wiki TXT pages, but the main families must be present.
        assert {"DOM1", "DOM2", "TXT1"} <= names

    def test_all_records_classified(self, tiny_scenario):
        for record in tiny_scenario.records:
            assert record.debug is not None
            # either clean or a concrete error kind
            assert record.debug.error_kind is None or isinstance(
                record.debug.error_kind, ErrorKind
            )

    def test_by_name(self, tiny_scenario):
        extractor = tiny_scenario.pipeline.by_name("TXT1")
        assert extractor.name == "TXT1"
        with pytest.raises(ExtractionError):
            tiny_scenario.pipeline.by_name("TXT99")

    def test_deterministic_rerun(self, tiny_scenario):
        records = tiny_scenario.pipeline.run(tiny_scenario.corpus)
        assert records == tiny_scenario.records


@pytest.mark.parallel_backend
class TestBackends:
    """Serial/parallel parity for the sharded extraction stage."""

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_parallel_bit_identical_under_both_start_methods(
        self, tiny_scenario, start_method
    ):
        """The resident fleet crosses via the pool initializer, so spawn
        workers (fresh interpreters) must reproduce the serial stream
        exactly, like fork workers do."""
        from repro.mapreduce.executors import ParallelExecutor

        with ParallelExecutor(max_workers=2, start_method=start_method) as executor:
            records = tiny_scenario.pipeline.run(
                tiny_scenario.corpus, executor=executor
            )
            assert executor.fallbacks == 0
        assert records == tiny_scenario.records

    def test_unknown_backend_rejected(self, tiny_scenario):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            tiny_scenario.pipeline.run(tiny_scenario.corpus, backend="gpu")
        with pytest.raises(ConfigError):
            ExtractionPipeline(tiny_scenario.pipeline.extractors, backend="gpu")

    def test_parallel_bit_identical_to_serial(self, tiny_scenario):
        parallel = tiny_scenario.pipeline.run(
            tiny_scenario.corpus, backend="parallel", n_workers=2
        )
        assert parallel == tiny_scenario.records

    def test_batched_bit_identical_to_serial(self, tiny_scenario):
        # Serial executor, batched synthesis kernels: the bitwise twin
        # of the scalar extract_page loop, observed through the backend.
        batched = tiny_scenario.pipeline.run(tiny_scenario.corpus, backend="batched")
        assert batched == tiny_scenario.records

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_hybrid_bit_identical_at_any_worker_count(
        self, tiny_scenario, n_workers, start_method
    ):
        """Batched synthesis inside parallel shards: bitwise-identical to
        the serial stream at every worker count under both start methods
        (the kernels reseed per page, so sharding cannot shift draws)."""
        from repro.mapreduce.executors import ParallelExecutor

        with ParallelExecutor(
            max_workers=n_workers, start_method=start_method
        ) as executor:
            records = tiny_scenario.pipeline.run(
                tiny_scenario.corpus, backend="hybrid", executor=executor
            )
            assert executor.fallbacks == 0
        assert records == tiny_scenario.records

    def test_parallel_pipeline_default_backend(self, tiny_scenario):
        pipeline = ExtractionPipeline(
            tiny_scenario.pipeline.extractors, backend="parallel", n_workers=2
        )
        assert pipeline.run(tiny_scenario.corpus) == tiny_scenario.records

    def test_caller_managed_executor_reused_and_counted(self, tiny_scenario):
        from repro.mapreduce.executors import ParallelExecutor

        with ParallelExecutor(max_workers=2) as executor:
            first = tiny_scenario.pipeline.run(
                tiny_scenario.corpus, executor=executor
            )
            second = tiny_scenario.pipeline.run(
                tiny_scenario.corpus, executor=executor
            )
            assert first == second == tiny_scenario.records
            assert executor.fallbacks == 0

    @pytest.mark.parametrize("backend", ["serial", "parallel"])
    def test_page_order_shuffle_invariance(self, tiny_scenario, backend):
        """Per-page output is insensitive to corpus page order: every noisy
        draw derives from (seed, extractor, url), so shuffling pages only
        permutes whole per-page record blocks."""
        import copy

        import numpy as np

        corpus = tiny_scenario.corpus
        shuffled = copy.copy(corpus)
        order = np.random.default_rng(99).permutation(len(corpus.pages))
        shuffled.pages = [corpus.pages[i] for i in order]

        kwargs = {"n_workers": 2} if backend == "parallel" else {}
        records = tiny_scenario.pipeline.run(shuffled, backend=backend, **kwargs)

        def by_page(record_list):
            grouped = {}
            for record in record_list:
                grouped.setdefault(record.url, []).append(record)
            return grouped

        grouped = by_page(tiny_scenario.records)
        assert by_page(records) == grouped
        # ...and the stream is the shuffled page order, page-major.
        expected = [
            record
            for page in shuffled.pages
            for record in grouped.get(page.url, [])
        ]
        assert records == expected
