"""Unit tests for the extraction pipeline and error classification."""

import pytest

from repro.errors import ExtractionError
from repro.extract.pipeline import ExtractionPipeline, classify_record
from repro.extract.records import ErrorKind, ExtractionDebug, ExtractionRecord
from repro.kb.triples import Triple
from repro.kb.values import EntityRef, StringValue
from repro.world.facts import SourceAssertion
from repro.world.webgen import WebPage

ASSERTED = Triple("/m/1", "t/t/p", EntityRef("/m/2"))


def make_page(source_error=False):
    return WebPage(
        url="http://s.org/p",
        site="s.org",
        category="general",
        assertions=(
            SourceAssertion(
                triple=ASSERTED, true_in_world=not source_error, exact=True
            ),
        ),
        elements=(),
    )


def make_record(triple, **debug_kwargs):
    return ExtractionRecord(
        triple=triple,
        extractor="X",
        url="http://s.org/p",
        site="s.org",
        content_type="DOM",
        debug=ExtractionDebug(**debug_kwargs),
    )


class TestClassification:
    def test_exact_match_is_clean(self):
        record = classify_record(make_record(ASSERTED, asserted_index=0), make_page())
        assert record.debug.error_kind is None
        assert record.debug.source_error is False

    def test_exact_match_carries_source_error(self):
        record = classify_record(
            make_record(ASSERTED, asserted_index=0), make_page(source_error=True)
        )
        assert record.debug.error_kind is None
        assert record.debug.source_error is True

    def test_fabricated_mention_is_triple_identification(self):
        record = classify_record(
            make_record(ASSERTED, asserted_index=None), make_page()
        )
        assert record.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION

    def test_span_corruption_is_triple_identification(self):
        wrong = Triple("/m/1", "t/t/p", StringValue("Mapother"))
        record = classify_record(
            make_record(wrong, asserted_index=0, span_corrupted=True), make_page()
        )
        assert record.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION

    def test_slot_mismatch_is_triple_identification(self):
        wrong = Triple("/m/1", "t/t/q", EntityRef("/m/2"))
        record = classify_record(
            make_record(wrong, asserted_index=0, slot_mismatch=True), make_page()
        )
        assert record.debug.error_kind is ErrorKind.TRIPLE_IDENTIFICATION

    def test_predicate_change_is_predicate_linkage(self):
        wrong = Triple("/m/1", "t/t/other", EntityRef("/m/2"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.PREDICATE_LINKAGE

    def test_wrong_entity_is_entity_linkage(self):
        wrong = Triple("/m/1", "t/t/p", EntityRef("/m/999"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.ENTITY_LINKAGE

    def test_string_fallback_is_entity_linkage(self):
        wrong = Triple("/m/1", "t/t/p", StringValue("Some Surface"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.ENTITY_LINKAGE

    def test_wrong_subject_is_entity_linkage(self):
        wrong = Triple("/m/777", "t/t/p", EntityRef("/m/2"))
        record = classify_record(make_record(wrong, asserted_index=0), make_page())
        assert record.debug.error_kind is ErrorKind.ENTITY_LINKAGE

    def test_error_implies_no_source_error_attribution(self):
        wrong = Triple("/m/1", "t/t/p", EntityRef("/m/999"))
        record = classify_record(
            make_record(wrong, asserted_index=0), make_page(source_error=True)
        )
        assert record.debug.source_error is False

    def test_stripped_debug_rejected(self):
        record = make_record(ASSERTED, asserted_index=0).without_debug()
        with pytest.raises(ExtractionError):
            classify_record(record, make_page())


class TestPipeline:
    def test_runs_all_extractors(self, tiny_scenario):
        names = {r.extractor for r in tiny_scenario.records}
        # Wiki-only extractors may be absent if the tiny corpus rendered no
        # wiki TXT pages, but the main families must be present.
        assert {"DOM1", "DOM2", "TXT1"} <= names

    def test_all_records_classified(self, tiny_scenario):
        for record in tiny_scenario.records:
            assert record.debug is not None
            # either clean or a concrete error kind
            assert record.debug.error_kind is None or isinstance(
                record.debug.error_kind, ErrorKind
            )

    def test_by_name(self, tiny_scenario):
        extractor = tiny_scenario.pipeline.by_name("TXT1")
        assert extractor.name == "TXT1"
        with pytest.raises(ExtractionError):
            tiny_scenario.pipeline.by_name("TXT99")

    def test_deterministic_rerun(self, tiny_scenario):
        records = tiny_scenario.pipeline.run(tiny_scenario.corpus)
        assert records == tiny_scenario.records
