"""Test package: tests (package __init__ so duplicate basenames import distinctly)."""
