"""The out-of-core pipeline: streaming == record path, mapped == memory.

The parity plan (docs/SCALING.md): each streaming backend must match the
record-path run of its *own* fusion backend bitwise — streaming
``parallel`` equals record-path ``serial`` (the parallel fusion backend
is bitwise vs serial by contract), streaming ``batched`` equals the
record path run under vectorized fusion, streaming ``hybrid`` equals
record-path ``hybrid`` — and the tolerance backends stay within the
1e-9 contract of serial.  Orthogonally, running the same streaming
backend over memory-mapped columns (``cache_dir`` set) must be
bitwise-identical to the in-memory columns: the mmap layer is a storage
format, never a numeric change.  All asserted here at ``tiny`` before
any ``web``-scale number is trusted (the bench case re-asserts the
contracts at scale).
"""

from __future__ import annotations

import pytest

from repro.datasets import tiny_config
from repro.endtoend import (
    STREAMING_PIPELINE_BACKENDS,
    run_end_to_end,
    run_streaming_pipeline,
)
from repro.fusion import FusionConfig
from repro.fusion.base import ConfigError

SEED = 7
TOLERANCE = 1e-9


def _stream(backend, **kwargs):
    kwargs.setdefault("chunk_pages", 16)
    kwargs.setdefault("copy_window", None)  # match the materialised corpus
    return run_streaming_pipeline(tiny_config(seed=SEED), backend=backend, **kwargs)


def _assert_bitwise(streaming, record, exact_metrics=True):
    assert streaming.fusion.probabilities == record.fusion.probabilities
    assert streaming.fusion.accuracies == record.fusion.accuracies
    if exact_metrics:
        assert streaming.metrics == record.metrics
    else:
        # The metric reductions iterate the probabilities dict in
        # insertion order, which differs between the columnar finalize
        # and the record path — identical values, last-ulp summation
        # drift allowed.
        assert streaming.metrics == pytest.approx(record.metrics, abs=1e-12)


def _assert_close(result, reference):
    probabilities = reference.fusion.probabilities
    assert result.fusion.probabilities.keys() == probabilities.keys()
    for triple, probability in result.fusion.probabilities.items():
        assert abs(probability - probabilities[triple]) <= TOLERANCE


class TestStreamingEqualsRecordPath:
    def test_batched_matches_vectorized_record_path(self):
        streaming = _stream("batched")
        record = run_end_to_end(
            tiny_config(seed=SEED),
            backend="batched",
            fusion_config=FusionConfig(seed=SEED, backend="vectorized"),
        )
        _assert_bitwise(streaming, record)
        assert streaming.n_records == len(record.scenario.records)
        assert streaming.n_pages == len(record.scenario.corpus.pages)

    def test_batched_within_tolerance_of_serial(self):
        streaming = _stream("batched")
        serial = run_end_to_end(tiny_config(seed=SEED), backend="serial")
        _assert_close(streaming, serial)

    @pytest.mark.parallel_backend
    def test_parallel_matches_serial_bitwise(self):
        streaming = _stream("parallel", n_workers=2)
        serial = run_end_to_end(tiny_config(seed=SEED), backend="serial")
        _assert_bitwise(streaming, serial, exact_metrics=False)

    @pytest.mark.parallel_backend
    def test_hybrid_matches_record_hybrid_bitwise(self):
        streaming = _stream("hybrid", n_workers=2)
        record = run_end_to_end(
            tiny_config(seed=SEED), backend="hybrid", n_workers=2
        )
        _assert_bitwise(streaming, record, exact_metrics=False)


class TestMappedEqualsMemory:
    def test_batched_mapped_is_bitwise(self, tmp_path):
        memory = _stream("batched")
        mapped = _stream("batched", cache_dir=tmp_path)
        assert mapped.diagnostics["column_store"] == "mapped"
        assert memory.diagnostics["column_store"] == "memory"
        _assert_bitwise(mapped, memory)

    @pytest.mark.parallel_backend
    @pytest.mark.parametrize("backend", ["parallel", "hybrid"])
    def test_pooled_mapped_is_bitwise(self, backend, tmp_path):
        memory = _stream(backend, n_workers=2)
        mapped = _stream(backend, n_workers=2, cache_dir=tmp_path)
        assert mapped.diagnostics["column_store"] == "mapped"
        _assert_bitwise(mapped, memory)

    def test_unwritable_cache_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("")  # a *file*: mkdir under it raises OSError
        memory = _stream("batched")
        degraded = _stream("batched", cache_dir=blocker / "cache")
        assert degraded.diagnostics["column_store"] == "memory (persist fallback)"
        _assert_bitwise(degraded, memory)


class TestStreamingDeterminism:
    def test_run_to_run(self):
        first = _stream("batched")
        second = _stream("batched")
        _assert_bitwise(first, second)

    def test_chunk_size_is_invisible(self):
        coarse = _stream("batched", chunk_pages=64)
        fine = _stream("batched", chunk_pages=7)
        _assert_bitwise(coarse, fine)
        assert coarse.n_records == fine.n_records
        assert coarse.diagnostics["n_chunks"] < fine.diagnostics["n_chunks"]


class TestStreamingSurface:
    def test_serial_backend_is_rejected(self):
        with pytest.raises(ConfigError, match="out-of-core"):
            run_streaming_pipeline(tiny_config(seed=SEED), backend="serial")

    def test_unknown_method_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown fusion method"):
            run_streaming_pipeline(tiny_config(seed=SEED), method="nope")

    def test_diagnostics_and_timings(self):
        result = _stream("batched", chunk_pages=16)
        for key in ("setup", "extraction", "labeling", "matrix", "fusion", "total"):
            assert key in result.timings
        diagnostics = result.diagnostics
        assert diagnostics["peak_rss_mb"] > 0
        assert diagnostics["chunk_pages"] == 16
        assert diagnostics["n_chunks"] == 5  # 80 tiny pages / 16
        assert diagnostics["n_pages"] == result.n_pages == 80
        assert diagnostics["n_records"] == result.n_records
        assert diagnostics["extraction_synthesis"] == "batched"
        assert result.backend == "batched"

    @pytest.mark.parallel_backend
    def test_pooled_diagnostics_report_state_bytes(self):
        result = _stream("hybrid", n_workers=2)
        assert result.diagnostics["state_bytes_shipped"] > 0
        assert result.diagnostics["round_state"] in (
            "shared-memory",
            "inline (shm fallback)",
        )

    def test_backend_list_excludes_serial(self):
        assert "serial" not in STREAMING_PIPELINE_BACKENDS
        assert set(STREAMING_PIPELINE_BACKENDS) == {"batched", "parallel", "hybrid"}
