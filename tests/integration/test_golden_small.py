"""Golden regression: the ``small`` scenario's end-to-end headline numbers.

Codec/shuffle refactors must not silently drift results.  This test runs
the full pipeline (world → corpus → extraction → LCWA gold → POPACCU+)
at the ``small`` scale with seed 0 — the configuration every benchmark
uses — and freezes the headline metrics.

The run is parametrised over the two bitwise extraction-synthesis modes
(``serial`` scalar loop and ``batched`` vectorised kernels): both must
reproduce the frozen numbers exactly, and the record streams themselves
must be identical post-classification — the synthesis kernels' parity
contract observed end to end.

The whole dataflow is deterministic *and* hash-seed independent (the
fusion kernels sum in canonical order, every noisy draw derives from
``split_seed``), so these are exact expectations up to float formatting;
the 1e-12 tolerances only absorb cross-platform libm wobble.  If this
test fails after an intentional behaviour change, re-derive the numbers
with::

    PYTHONPATH=src python -c "
    from repro.datasets import small_config
    from repro.endtoend import run_end_to_end
    r = run_end_to_end(small_config(seed=0), method='popaccu+')
    print(r.metrics, r.scenario.extraction_stats())"

and say so in the commit message.
"""

import pytest

from repro.datasets import small_config
from repro.endtoend import run_end_to_end


@pytest.fixture(scope="module", params=["serial", "batched"])
def small_run(request):
    return run_end_to_end(
        small_config(seed=0), method="popaccu+", backend=request.param
    )


class TestGoldenSmall:
    def test_extraction_stats_frozen(self, small_run):
        stats = small_run.scenario.extraction_stats()
        assert stats["extracted_records"] == 36842
        assert stats["unique_triples"] == 15716
        assert stats["data_items"] == 4440
        assert stats["gold_coverage"] == pytest.approx(
            0.4724484601679817, abs=1e-12
        )
        assert stats["gold_accuracy"] == pytest.approx(
            0.1828956228956229, abs=1e-12
        )

    def test_fusion_shape_frozen(self, small_run):
        assert len(small_run.fusion.probabilities) == 15716
        assert len(small_run.fusion.unpredicted) == 0
        assert small_run.fusion.rounds == 5
        assert small_run.fusion.converged is False
        diag = small_run.fusion.diagnostics
        assert diag["n_items"] == 4440
        assert diag["n_provenances"] == 8382
        assert diag["n_claims"] == 31948
        assert diag["gold_initialized"] == 5225
        assert diag["n_active_final"] == 2187

    def test_headline_metrics_frozen(self, small_run):
        metrics = small_run.metrics
        assert metrics["n_labelled"] == 7425
        assert metrics["coverage"] == 1.0
        assert metrics["deviation"] == pytest.approx(
            0.01601675771816096, abs=1e-12
        )
        assert metrics["weighted_deviation"] == pytest.approx(
            0.005308203144721858, abs=1e-12
        )
        assert metrics["auc_pr"] == pytest.approx(0.7567209768249222, abs=1e-12)
        assert metrics["gold_accuracy"] == pytest.approx(
            0.8917171717171717, abs=1e-12
        )


class TestExtractionBackendAxis:
    def test_synthesis_mode_tagged_in_diagnostics(self, small_run):
        expected = "batched" if small_run.backend == "batched" else "scalar"
        assert small_run.diagnostics["extraction_synthesis"] == expected
        # The stock fleet ships a kernel per family; no scalar fallback.
        assert "synthesis_fallbacks" not in small_run.diagnostics

    def test_record_streams_identical_across_synthesis_modes(self, small_run):
        # Re-extract the same corpus under the *other* synthesis mode:
        # the classified record streams must match record for record.
        scenario = small_run.scenario
        other = "batched" if small_run.backend == "serial" else "serial"
        records = scenario.pipeline.run(scenario.corpus, backend=other)
        assert records == scenario.records

    def test_extract_corpus_matches_the_pipeline_stream(self, small_run):
        # ``extract_corpus`` and ``ExtractionPipeline.run`` share one
        # batching entry point (``extract_pages_batch``): a
        # single-extractor corpus run must reproduce its slice of the
        # pipeline's classified stream exactly.
        scenario = small_run.scenario
        for extractor in scenario.pipeline.extractors:
            records = extractor.extract_corpus(scenario.corpus)
            assert records == [
                record
                for record in scenario.records
                if record.extractor == extractor.name
            ]
