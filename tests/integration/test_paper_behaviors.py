"""Integration tests pinning the paper's headline qualitative findings.

Each test names the claim in the paper it checks.  These are *shape*
assertions — the synthetic corpus is ~10⁴x smaller than the paper's, so we
assert directions and orderings, not absolute numbers.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.common import metrics_for, standard_fusion_results


@pytest.fixture(scope="module")
def results(tiny_scenario):
    return standard_fusion_results(tiny_scenario)


@pytest.fixture(scope="module")
def metrics(tiny_scenario, results):
    return {
        name: metrics_for(result.probabilities, tiny_scenario.gold)
        for name, result in results.items()
    }


class TestSection42:
    def test_vote_is_worst_on_auc_pr(self, metrics):
        """Fig 9: 'In terms of PR-curves ... VOTE has the lowest [AUC-PR].'"""
        assert metrics["VOTE"].auc_pr == min(
            metrics[name].auc_pr for name in ("VOTE", "ACCU", "POPACCU")
        )

    def test_vote_spikes_at_one_are_impure(self, tiny_scenario, results):
        """Fig 9: the real accuracy of VOTE's p=1.0 triples is far below 1
        (the paper measured 0.56)."""
        from repro.eval.calibration import calibration_curve

        curve = calibration_curve(results["VOTE"].probabilities, tiny_scenario.gold)
        top = curve.buckets[-1]
        assert top.count > 0
        assert top.real < 0.8

    def test_bayesian_methods_overconfident_at_top(self, tiny_scenario, results):
        """§4.2: ACCU/POPACCU 'over-estimate for triples with a high
        predicted probability'."""
        from repro.eval.calibration import calibration_curve

        for name in ("ACCU", "POPACCU"):
            curve = calibration_curve(
                results[name].probabilities, tiny_scenario.gold
            )
            top = [b for b in curve.buckets if b.low >= 0.9 and b.count > 0]
            assert top
            weighted_real = sum(b.real * b.count for b in top) / sum(
                b.count for b in top
            )
            assert weighted_real < 0.95


class TestSection43:
    def test_gold_initialisation_helps(self, metrics):
        """Fig 12/13: the semi-supervised POPACCU+ beats everything."""
        assert metrics["POPACCU+"].auc_pr == max(m.auc_pr for m in metrics.values())
        assert metrics["POPACCU+"].wdev == min(m.wdev for m in metrics.values())

    def test_refinements_improve_over_basic_popaccu(self, metrics):
        """Fig 13: the cumulative changes reduce weighted deviation and
        raise AUC-PR relative to basic POPACCU."""
        assert metrics["POPACCU+"].wdev < metrics["POPACCU"].wdev
        assert metrics["POPACCU+"].auc_pr > metrics["POPACCU"].auc_pr

    def test_more_gold_is_monotone_in_auc(self, tiny_scenario):
        """Fig 12: 'the higher sample rate, the better results'."""
        data = run_experiment("fig12", tiny_scenario).data
        aucs = [data[rate]["auc_pr"] for rate in ("10%", "20%", "50%", "100%")]
        # Allow small non-monotonic jitter at tiny scale, but the trend must
        # be upward end to end.
        assert aucs[-1] > aucs[0]

    def test_sampling_l_barely_matters(self, tiny_scenario):
        """Fig 14: 'sampling L = 1K triples ... leads to very similar
        performance measures'."""
        data = run_experiment("fig14", tiny_scenario).data["lr_table"]
        assert data["L=1K, R=5"]["wdev"] == pytest.approx(
            data["L=1M, R=5"]["wdev"], abs=0.02
        )

    def test_round_one_moves_most(self, tiny_scenario):
        """Fig 14: 'the predicted triple probabilities would change a lot
        from the first round to the second, but stay fairly stable
        afterwards' — with default init."""
        data = run_experiment("fig14", tiny_scenario).data["per_round_wdev"]
        series = data["DefaultAccu"]
        first_move = abs(series[1] - series[0])
        later_moves = [abs(series[i + 1] - series[i]) for i in range(1, len(series) - 1)]
        assert later_moves
        assert first_move >= max(later_moves) - 0.01


class TestSection44AndFigures:
    def test_extraction_errors_dominate_source_errors(self, tiny_scenario):
        """§3.2.1: 'extractions are responsible for the majority of the
        errors' (the paper's sample: only 4% were genuinely source-provided)."""
        extraction = sum(
            1 for r in tiny_scenario.records if r.is_extraction_error
        )
        source = sum(1 for r in tiny_scenario.records if r.is_source_error)
        assert extraction > source

    def test_fp_mix_contains_cwa_artifacts(self, tiny_scenario):
        """Fig 17: half the false positives were not errors at all but
        closed-world artifacts; both categories must appear.  The tiny
        scenario has very few FPs at p>=0.9, so the check widens the
        threshold to get a usable sample (the paper's protocol of sampling
        p=1.0 triples needs web-scale volumes)."""
        from repro.eval.analysis import analyze_errors
        from repro.experiments.common import standard_fusion_results

        result = standard_fusion_results(tiny_scenario)["POPACCU+"]
        breakdown = analyze_errors(
            tiny_scenario, result.probabilities, fp_threshold=0.6, fn_threshold=0.4
        )
        cwa = (
            breakdown.fp_categories.get("closed_world_assumption", 0)
            + breakdown.fp_categories.get("more_specific_value", 0)
            + breakdown.fp_categories.get("more_general_value", 0)
            + breakdown.fp_categories.get("wrong_value_in_freebase", 0)
        )
        assert cwa > 0
        assert breakdown.fp_categories.get("common_extraction_error", 0) > 0

    def test_fn_mix_dominated_by_multiple_truths(self, tiny_scenario):
        """Fig 17: 65% of false negatives stem from multiple truths under
        the single-truth assumption."""
        data = run_experiment("fig17", tiny_scenario).data
        categories = data["fn_categories"]
        assert categories.get("multiple_truths", 0) >= max(
            categories.get("specific_general", 0) - 2, 0
        )

    def test_extractor_accuracy_ordering(self, tiny_scenario):
        """Table 2's extremes: the careful extractors (TXT4, TBL2, DOM3)
        beat the sloppy ones (DOM2, DOM5) by a wide margin."""
        data = run_experiment("table2", tiny_scenario).data
        careful = [
            data[name]["accuracy"]
            for name in ("TXT4", "TBL2", "DOM3")
            if data[name]["accuracy"] is not None
        ]
        sloppy = [
            data[name]["accuracy"]
            for name in ("DOM2", "DOM5")
            if data[name]["accuracy"] is not None
        ]
        assert careful and sloppy
        assert min(careful) > max(sloppy)

    def test_fig18_multi_extractor_triples_better(self, tiny_scenario):
        """Fig 18: at fixed #provenances, multi-extractor triples are more
        accurate than single-extractor ones on average."""
        data = run_experiment("fig18", tiny_scenario).data
        single = dict((e, a) for e, _n, a in data["1 extractor"])
        multi_key = next(k for k in data if k.startswith(">="))
        multi = dict((e, a) for e, _n, a in data[multi_key])
        shared = set(single) & set(multi)
        if not shared:
            pytest.skip("no shared provenance buckets at this scale")
        gaps = [multi[e] - single[e] for e in shared]
        assert sum(gaps) / len(gaps) > 0

    def test_fig16_probabilities_polarised(self, tiny_scenario):
        """Fig 16: most POPACCU+ probabilities are near 0 or 1."""
        data = run_experiment("fig16", tiny_scenario).data
        assert data["share_low"] + data["share_high"] > 0.5
