"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "classic_data_fusion.py",
        "granularity_study.py",
        "error_analysis_demo.py",
        "future_directions.py",
        "knowledge_vault_pipeline.py",
    ],
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_prefers_true_date():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    lines = [l for l in completed.stdout.splitlines() if l.startswith("1962-07-03")]
    assert lines, completed.stdout
    # Every fuser's probability for the true date beats 0.5.
    values = [float(x) for x in lines[0].split()[1:]]
    assert all(v > 0.5 for v in values)


def test_classic_fusion_breaks_the_tie():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "classic_data_fusion.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "get them right." in completed.stdout
