"""End-to-end integration tests: determinism and isolation guarantees."""

import pytest

from repro.datasets import ScenarioConfig, build_scenario
from repro.fusion import FusionInput, popaccu, popaccu_plus, vote
from repro.world.config import WebConfig, WorldConfig


class TestDeterminism:
    def test_scenario_fully_deterministic(self):
        config = ScenarioConfig(
            seed=31,
            world=WorldConfig(n_types=6, n_entities=100),
            web=WebConfig(n_sites=10, n_pages=60),
        )
        a = build_scenario(config, use_cache=False)
        b = build_scenario(config, use_cache=False)
        assert a.records == b.records
        assert a.gold == b.gold
        assert set(a.freebase) == set(b.freebase)

    def test_fusion_deterministic(self, tiny_scenario):
        first = popaccu().fuse(tiny_scenario.fusion_input())
        second = popaccu().fuse(tiny_scenario.fusion_input())
        assert first.probabilities == second.probabilities
        assert first.accuracies == second.accuracies

    def test_fusion_independent_of_record_order(self, tiny_scenario):
        records = list(tiny_scenario.records)
        forward = popaccu().fuse(FusionInput(records))
        backward = popaccu().fuse(FusionInput(list(reversed(records))))
        for triple, probability in forward.probabilities.items():
            assert backward.probabilities[triple] == pytest.approx(probability)


class TestDebugChannelIsolation:
    """Fusion must be blind to the injected-error ground truth."""

    def test_fusion_invariant_to_debug_stripping(self, tiny_scenario):
        stripped = [record.without_debug() for record in tiny_scenario.records]
        with_debug = popaccu_plus(tiny_scenario.gold).fuse(
            tiny_scenario.fusion_input()
        )
        without_debug = popaccu_plus(tiny_scenario.gold).fuse(FusionInput(stripped))
        assert with_debug.probabilities == without_debug.probabilities
        assert with_debug.unpredicted == without_debug.unpredicted

    def test_vote_invariant_to_debug_stripping(self, tiny_scenario):
        stripped = [record.without_debug() for record in tiny_scenario.records]
        a = vote().fuse(tiny_scenario.fusion_input())
        b = vote().fuse(FusionInput(stripped))
        assert a.probabilities == b.probabilities


class TestScaleInvariance:
    """Headline shapes should agree between micro and tiny scales."""

    def test_gold_accuracy_same_regime(self, micro_scenario, tiny_scenario):
        micro = micro_scenario.extraction_stats()["gold_accuracy"]
        tiny = tiny_scenario.extraction_stats()["gold_accuracy"]
        assert abs(micro - tiny) < 0.3

    def test_popaccu_plus_beats_vote_at_both_scales(
        self, micro_scenario, tiny_scenario
    ):
        from repro.experiments.common import metrics_for, standard_fusion_results

        for scenario in (micro_scenario, tiny_scenario):
            results = standard_fusion_results(scenario)
            plus = metrics_for(
                results["POPACCU+"].probabilities, scenario.gold
            )
            base = metrics_for(results["VOTE"].probabilities, scenario.gold)
            assert plus.auc_pr > base.auc_pr
