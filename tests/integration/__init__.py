"""Test package: integration (package __init__ so duplicate basenames import distinctly)."""
