"""Scalar ↔ vectorized posterior parity, property-based.

The batched numpy kernels of :mod:`repro.fusion.kernels` must reproduce
the scalar reference implementations (``accu_item_posteriors``,
``popaccu_item_posteriors``, ``vote_item_posteriors``) to 1e-9 on
arbitrary claim matrices — including the awkward corners: a single
provenance, more observed values than ACCU's assumed domain (k > N),
unanimous items, multi-item batches, and empty inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion import kernels
from repro.fusion.accu import accu_item_posteriors
from repro.fusion.observations import ColumnarClaims
from repro.fusion.popaccu import popaccu_item_posteriors
from repro.fusion.vote import vote_item_posteriors
from repro.kb.triples import Triple
from repro.kb.values import StringValue

TOL = 1e-9


def t(name: str, subject: str = "/m/1") -> Triple:
    return Triple(subject, "t/t/p", StringValue(name))


@st.composite
def claim_matrices(draw, subject: str = "/m/1"):
    """A random data item: values, provenances, accuracies."""
    n_values = draw(st.integers(min_value=1, max_value=5))
    n_provs = draw(st.integers(min_value=n_values, max_value=12))
    accuracies = {
        (f"S{i}",): draw(
            st.floats(min_value=0.01, max_value=0.99, allow_nan=False)
        )
        for i in range(n_provs)
    }
    assignment = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_values - 1),
                min_size=n_provs - n_values,
                max_size=n_provs - n_values,
            )
        )
        + list(range(n_values))
    )
    claims: dict = {}
    for prov_index, value_index in enumerate(assignment):
        claims.setdefault(t(f"v{value_index}", subject), set()).add((f"S{prov_index}",))
    return claims, accuracies


def columnar_of(*claim_dicts):
    """Build one ColumnarClaims batch from per-item claims dicts."""
    items_map: dict = {}
    for claims in claim_dicts:
        for triple, provs in claims.items():
            items_map.setdefault(triple.data_item, {}).setdefault(
                triple, set()
            ).update(provs)
    return ColumnarClaims.from_items(items_map)


def acc_array(cols, accuracies):
    return np.array([accuracies[p] for p in cols.provenances], dtype=np.float64)


def batch_as_dict(cols, round_result):
    return {
        cols.triples[r]: float(round_result.posteriors[r])
        for r in np.flatnonzero(round_result.scored)
    }


def assert_parity(scalar: dict, batched: dict):
    assert set(scalar) == set(batched)
    for triple, probability in scalar.items():
        assert batched[triple] == pytest.approx(probability, abs=TOL)


class TestAccuParity:
    @given(claim_matrices(), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar(self, matrix, n_false):
        claims, accuracies = matrix
        cols = columnar_of(claims)
        batched = kernels.accu_round(
            cols, acc_array(cols, accuracies), np.ones(len(cols.provenances), bool), n_false
        )
        assert_parity(
            accu_item_posteriors(claims, accuracies, n_false),
            batch_as_dict(cols, batched),
        )

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_provenance(self, accuracy, n_false):
        claims = {t("a"): {("S",)}}
        accuracies = {("S",): accuracy}
        cols = columnar_of(claims)
        batched = kernels.accu_round(
            cols, acc_array(cols, accuracies), np.ones(1, bool), n_false
        )
        assert_parity(
            accu_item_posteriors(claims, accuracies, n_false),
            batch_as_dict(cols, batched),
        )

    def test_more_observed_values_than_domain(self):
        """k > N: the unobserved-value mass clamps at zero, both paths."""
        claims = {t(f"v{i}"): {(f"S{i}",)} for i in range(5)}
        accuracies = {(f"S{i}",): 0.6 + 0.05 * i for i in range(5)}
        for n_false in (1, 2, 3, 4):
            cols = columnar_of(claims)
            batched = kernels.accu_round(
                cols, acc_array(cols, accuracies), np.ones(5, bool), n_false
            )
            assert_parity(
                accu_item_posteriors(claims, accuracies, n_false),
                batch_as_dict(cols, batched),
            )


class TestPopAccuParity:
    @given(claim_matrices())
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar(self, matrix):
        claims, accuracies = matrix
        cols = columnar_of(claims)
        batched = kernels.popaccu_round(
            cols, acc_array(cols, accuracies), np.ones(len(cols.provenances), bool)
        )
        assert_parity(
            popaccu_item_posteriors(claims, accuracies),
            batch_as_dict(cols, batched),
        )

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_single_provenance_sticks_to_accuracy(self, accuracy):
        claims = {t("a"): {("S",)}}
        cols = columnar_of(claims)
        batched = kernels.popaccu_round(
            cols, np.array([accuracy]), np.ones(1, bool)
        )
        assert batch_as_dict(cols, batched)[t("a")] == pytest.approx(
            accuracy, abs=TOL
        )

    @given(
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_unanimous_item(self, n_provs, accuracy):
        """A single observed value (empty rest-sum in the scalar loop)."""
        claims = {t("a"): {(f"S{i}",) for i in range(n_provs)}}
        accuracies = {(f"S{i}",): accuracy for i in range(n_provs)}
        cols = columnar_of(claims)
        batched = kernels.popaccu_round(
            cols, acc_array(cols, accuracies), np.ones(n_provs, bool)
        )
        assert_parity(
            popaccu_item_posteriors(claims, accuracies),
            batch_as_dict(cols, batched),
        )


class TestVoteParity:
    @given(claim_matrices())
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar(self, matrix):
        claims, _accuracies = matrix
        cols = columnar_of(claims)
        batched = kernels.vote_round(cols)
        assert_parity(vote_item_posteriors(claims), batch_as_dict(cols, batched))


class TestBatchStructure:
    @given(claim_matrices("/m/1"), claim_matrices("/m/2"), claim_matrices("/m/3"))
    @settings(max_examples=50, deadline=None)
    def test_multi_item_batch_equals_per_item_scalar(self, m1, m2, m3):
        """One batched call over three data items == three scalar calls."""
        all_claims = [m1[0], m2[0], m3[0]]
        accuracies: dict = {}
        # Rename provenances per item so accuracy maps do not collide.
        renamed = []
        for idx, (claims, accs) in enumerate((m1, m2, m3)):
            mapping = {p: (f"I{idx}_{p[0]}",) for p in accs}
            renamed.append(
                {tr: {mapping[p] for p in provs} for tr, provs in claims.items()}
            )
            accuracies.update({mapping[p]: a for p, a in accs.items()})
        cols = columnar_of(*renamed)
        batched = batch_as_dict(
            cols,
            kernels.popaccu_round(
                cols, acc_array(cols, accuracies), np.ones(len(cols.provenances), bool)
            ),
        )
        expected: dict = {}
        for claims in renamed:
            expected.update(popaccu_item_posteriors(claims, accuracies))
        assert_parity(expected, batched)

    def test_empty_batch(self):
        cols = ColumnarClaims.from_items({})
        assert cols.n_rows == 0 and cols.n_items == 0 and cols.n_claims == 0
        for round_result in (
            kernels.accu_round(cols, np.zeros(0), np.zeros(0, bool), 100),
            kernels.popaccu_round(cols, np.zeros(0), np.zeros(0, bool)),
            kernels.vote_round(cols),
        ):
            assert round_result.posteriors.shape == (0,)
            assert not round_result.scored.any()
        assert vote_item_posteriors({}) == {}

    def test_inactive_provenances_are_excluded(self):
        """Deactivating a provenance must match removing it from the claims."""
        claims = {t("a"): {("S0",), ("S1",)}, t("b"): {("S2",)}}
        accuracies = {("S0",): 0.7, ("S1",): 0.9, ("S2",): 0.6}
        cols = columnar_of(claims)
        active = np.array([p != ("S2",) for p in cols.provenances])
        batched = batch_as_dict(
            cols, kernels.popaccu_round(cols, acc_array(cols, accuracies), active)
        )
        reduced = {t("a"): {("S0",), ("S1",)}}
        assert_parity(popaccu_item_posteriors(reduced, accuracies), batched)
