"""Coverage-mask ↔ per-page ``covers`` parity, property-based.

:meth:`~repro.extract.base.Extractor.coverage_mask` is the batched face
of :meth:`~repro.extract.base.Extractor.covers`; the extraction pipeline
decides which pages an extractor sees through the mask, so any
divergence silently changes the record stream.  The properties here run
arbitrary page selections (duplicates, reorderings, empty lists) through
the full 12-extractor fleet — deterministic-coverage and
site-restricted profiles included — plus purpose-built restricted and
full-coverage profiles.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extract.base import ExtractorProfile
from repro.extract.linkage import EntityLinker
from repro.extract.text import TextExtractor
from repro.world.labels import build_templates
from repro.world.webgen import WebPage


def select_pages(pages, indices):
    return [pages[index % len(pages)] for index in indices]


class TestFleetCoverageMaskParity:
    @settings(max_examples=50, deadline=None)
    @given(indices=st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
    def test_mask_matches_covers_across_the_fleet(self, tiny_scenario, indices):
        corpus_pages = list(tiny_scenario.corpus.pages)
        pages = select_pages(corpus_pages, indices)
        for extractor in tiny_scenario.pipeline.extractors:
            mask = extractor.coverage_mask(pages)
            assert mask.dtype == np.bool_
            assert mask.shape == (len(pages),)
            assert list(mask) == [extractor.covers(page) for page in pages]

    def test_fleet_has_both_profile_shapes(self, tiny_scenario):
        # The property above only means something if the fleet really
        # exercises both code paths: at least one extractor restricted by
        # site category, and at least one covering every page.
        profiles = [e.profile for e in tiny_scenario.pipeline.extractors]
        assert any(p.site_categories is not None for p in profiles)
        assert any(p.site_categories is None for p in profiles)
        assert any(p.page_coverage == 1.0 for p in profiles)


def make_extractor(world, **profile_kwargs):
    defaults = dict(name="P", content_types=("TXT",))
    defaults.update(profile_kwargs)
    profile = ExtractorProfile(**defaults)
    linker = EntityLinker("EL-A", world.entities, world.popularity, seed=1)
    return TextExtractor(profile, world.schema, linker, build_templates(world.schema), seed=1)


def make_page(index, category):
    return WebPage(
        url=f"http://s{index % 7}.org/p{index}",
        site=f"s{index % 7}.org",
        category=category,
        assertions=(),
        elements=(),
    )


CATEGORIES = ("wiki", "news", "general", "forum")


class TestConstructedProfiles:
    @settings(max_examples=60, deadline=None)
    @given(
        spec=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.sampled_from(CATEGORIES),
            ),
            max_size=50,
        ),
        restriction=st.sets(st.sampled_from(CATEGORIES), min_size=1, max_size=3),
        coverage=st.sampled_from([0.0, 0.3, 0.5, 1.0]),
    )
    def test_restricted_profile_parity(self, small_world, spec, restriction, coverage):
        extractor = make_extractor(
            small_world,
            site_categories=tuple(sorted(restriction)),
            page_coverage=coverage,
        )
        pages = [make_page(index, category) for index, category in spec]
        mask = extractor.coverage_mask(pages)
        assert list(mask) == [extractor.covers(page) for page in pages]
        uncovered_categories = {
            page.category for page, hit in zip(pages, mask) if not hit
        }
        assert all(
            category in restriction
            for page, hit in zip(pages, mask)
            if hit
            for category in [page.category]
        )
        if coverage == 1.0:
            # Full coverage: the restriction is the *only* filter.
            assert list(mask) == [page.category in restriction for page in pages]
        del uncovered_categories

    @settings(max_examples=40, deadline=None)
    @given(
        indices=st.lists(st.integers(min_value=0, max_value=500), max_size=50),
    )
    def test_full_coverage_unrestricted_covers_everything(self, small_world, indices):
        extractor = make_extractor(small_world, page_coverage=1.0)
        pages = [make_page(index, CATEGORIES[index % 4]) for index in indices]
        mask = extractor.coverage_mask(pages)
        assert mask.all()
        assert list(mask) == [extractor.covers(page) for page in pages]
