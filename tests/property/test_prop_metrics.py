"""Property-based tests for the evaluation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.calibration import calibration_curve, deviation, weighted_deviation
from repro.eval.kappa import kappa
from repro.eval.pr import auc_pr, pr_curve
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(index: int) -> Triple:
    return Triple("/m/1", "t/t/p", StringValue(f"v{index}"))


@st.composite
def predictions(draw, min_size=1, require_true=False):
    n = draw(st.integers(min_value=min_size, max_value=60))
    probabilities = {}
    gold = {}
    any_true = False
    for i in range(n):
        probabilities[t(i)] = draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        label = draw(st.booleans())
        gold[t(i)] = label
        any_true = any_true or label
    if require_true and not any_true:
        gold[t(0)] = True
    return probabilities, gold


class TestCalibrationProperties:
    @given(predictions())
    @settings(max_examples=150, deadline=None)
    def test_deviations_bounded(self, prediction):
        probabilities, gold = prediction
        curve = calibration_curve(probabilities, gold)
        assert 0.0 <= deviation(curve) <= 1.0
        assert 0.0 <= weighted_deviation(curve) <= 1.0

    @given(predictions())
    @settings(max_examples=150, deadline=None)
    def test_bucket_counts_add_up(self, prediction):
        probabilities, gold = prediction
        curve = calibration_curve(probabilities, gold)
        assert sum(b.count for b in curve.buckets) == curve.n_labelled == len(gold)

    @given(predictions())
    @settings(max_examples=150, deadline=None)
    def test_bucket_reals_are_probabilities(self, prediction):
        probabilities, gold = prediction
        curve = calibration_curve(probabilities, gold)
        for bucket in curve.buckets:
            assert 0.0 <= bucket.real <= 1.0
            assert 0.0 <= bucket.predicted <= 1.0

    @given(predictions())
    @settings(max_examples=100, deadline=None)
    def test_perfectly_labelled_prediction_has_zero_wdev(self, prediction):
        """Predicting exactly 0/1 matching the gold labels is perfectly
        calibrated."""
        _probabilities, gold = prediction
        oracle = {triple: 1.0 if label else 0.0 for triple, label in gold.items()}
        curve = calibration_curve(oracle, gold)
        assert weighted_deviation(curve) == pytest.approx(0.0)


class TestPRProperties:
    @given(predictions(require_true=True))
    @settings(max_examples=150, deadline=None)
    def test_auc_bounded(self, prediction):
        probabilities, gold = prediction
        area = auc_pr(pr_curve(probabilities, gold))
        assert 0.0 <= area <= 1.0

    @given(predictions(require_true=True))
    @settings(max_examples=150, deadline=None)
    def test_recall_monotone(self, prediction):
        probabilities, gold = prediction
        curve = pr_curve(probabilities, gold)
        assert list(curve.recalls) == sorted(curve.recalls)
        assert curve.recalls[-1] == pytest.approx(1.0)

    @given(predictions(require_true=True))
    @settings(max_examples=100, deadline=None)
    def test_oracle_ranking_auc_is_one(self, prediction):
        _probabilities, gold = prediction
        oracle = {triple: 1.0 if label else 0.0 for triple, label in gold.items()}
        assert auc_pr(pr_curve(oracle, gold)) == pytest.approx(1.0)

    @given(predictions(require_true=True))
    @settings(max_examples=100, deadline=None)
    def test_precision_in_unit_interval(self, prediction):
        probabilities, gold = prediction
        curve = pr_curve(probabilities, gold)
        for precision in curve.precisions:
            assert 0.0 <= precision <= 1.0


class TestKappaProperties:
    @given(
        st.sets(st.integers(min_value=0, max_value=60), min_size=0, max_size=40),
        st.sets(st.integers(min_value=0, max_value=60), min_size=0, max_size=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_kappa_symmetric_and_bounded(self, t1, t2):
        universe = set(range(61))
        value = kappa(t1, t2, universe)
        assert value == kappa(t2, t1, universe)
        assert -1.0 <= value <= 1.0

    @given(st.sets(st.integers(min_value=0, max_value=60), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_self_kappa_positive(self, t1):
        universe = set(range(61))
        assert kappa(t1, t1, universe) > 0

    @given(st.sets(st.integers(min_value=0, max_value=29), min_size=1, max_size=29))
    @settings(max_examples=100, deadline=None)
    def test_complement_kappa_negative(self, t1):
        universe = set(range(30))
        complement = universe - t1
        if not complement:
            return
        assert kappa(t1, complement, universe) < 0
