"""Property-based tests for substrate data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.hierarchy import ValueHierarchy
from repro.kb.store import KnowledgeBase
from repro.kb.triples import Triple
from repro.kb.values import NumberValue, StringValue, parse_value
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.rng import named_rng, stream_seed, zipf_weights

text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=20,
)


class TestValueProperties:
    @given(text)
    @settings(max_examples=100, deadline=None)
    def test_string_value_roundtrip(self, s):
        value = StringValue(s)
        assert parse_value(value.canonical()) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=150, deadline=None)
    def test_number_value_roundtrip_after_normalisation(self, x):
        value = NumberValue(float(x))
        assert parse_value(value.canonical()) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=100, deadline=None)
    def test_number_normalisation_idempotent(self, x):
        once = NumberValue(float(x))
        twice = NumberValue(once.value)
        assert once == twice


class TestStoreProperties:
    @given(st.lists(st.tuples(text, text, text), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_store_counts_consistent(self, rows):
        kb = KnowledgeBase()
        triples = [Triple(s or "s", p or "p", StringValue(o)) for s, p, o in rows]
        kb.add_all(triples)
        stats = kb.stats()
        assert stats["triples"] == len(set(triples))
        assert stats["data_items"] <= stats["triples"]
        assert stats["subjects"] <= stats["data_items"]
        for triple in triples:
            assert triple in kb
            assert kb.has_item(triple.data_item)


class TestHierarchyProperties:
    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_chain_depth_matches_length(self, n):
        h = ValueHierarchy()
        for i in range(n - 1):
            h.add_edge(f"n{i}", f"n{i + 1}")
        assert h.depth("n0") == n - 1
        assert h.chain("n0") == [f"n{i}" for i in range(n)]
        assert h.roots() == [f"n{n - 1}"]

    @given(st.integers(min_value=2, max_value=20), st.data())
    @settings(max_examples=50, deadline=None)
    def test_ancestorhood_is_transitive(self, n, data):
        h = ValueHierarchy()
        # Random forest: each node's parent has a smaller index.
        for i in range(1, n):
            parent = data.draw(st.integers(min_value=i, max_value=n - 1))
            if parent == i:
                continue
            h.add_edge(f"n{i - 1}", f"n{parent}") if False else None
        # Build a simple chain instead for determinism of the property:
        h2 = ValueHierarchy()
        for i in range(1, n):
            h2.add_edge(f"m{i}", f"m{i - 1}")
        for a in range(n):
            for b in range(a + 1, n):
                assert h2.is_ancestor(f"m{a}", f"m{b}")


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), text)
    @settings(max_examples=100, deadline=None)
    def test_stream_seed_stable(self, seed, name):
        assert stream_seed(seed, name) == stream_seed(seed, name)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_named_streams_independent(self, seed):
        a = named_rng(seed, "alpha").integers(1 << 30)
        b = named_rng(seed, "beta").integers(1 << 30)
        a2 = named_rng(seed, "alpha").integers(1 << 30)
        assert a == a2
        # Different names *may* collide on one draw, but the seeds differ.
        assert stream_seed(seed, "alpha") != stream_seed(seed, "beta")

    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_zipf_weights_normalised_and_decreasing(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert len(weights) == n
        assert abs(weights.sum() - 1.0) < 1e-9
        assert all(weights[i] >= weights[i + 1] for i in range(n - 1))


class TestMapReduceProperties:
    @given(st.lists(st.integers(min_value=-50, max_value=50), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_group_sum_equals_total(self, values):
        job = MapReduceJob(
            name="sum",
            mapper=lambda v: [(v % 5, v)],
            reducer=lambda k, vs: [sum(vs)],
        )
        outputs = MapReduceEngine().run(values, job)
        assert sum(outputs) == sum(values)

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance(self, values):
        job = MapReduceJob(
            name="count",
            mapper=lambda v: [(v, 1)],
            reducer=lambda k, vs: [(k, len(vs))],
        )
        engine = MapReduceEngine()
        assert engine.run(values, job) == engine.run(list(reversed(values)), job)
