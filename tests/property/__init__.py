"""Test package: property (package __init__ so duplicate basenames import distinctly)."""
