"""Batched synthesis ↔ scalar ``extract_page`` bitwise parity, property-based.

:meth:`~repro.extract.base.Extractor.extract_pages_batch` and the
fleet-level :func:`~repro.extract.synthesis.synthesize_batch` driver are
the batched faces of scalar :meth:`~repro.extract.base.Extractor.extract_page`
— the same twin convention as ``classify_record``/``classify_batch``
(see ``test_prop_kernels``), except the contract here is **bitwise**:
record lists must compare equal field-for-field, confidence floats and
debug payloads included.  The batched path reseeds per page from a
vectorised seed array keyed on ``(seed, "extract", name, url)``, so any
drift — a generator consumed out of turn, a cache returning a
near-equal object, a seed derived differently from numpy's
``SeedSequence`` — shows up as a record mismatch.

The properties run the full 12-extractor fleet (confidence models on
and off, all four content families) over page selections with
duplicates and reorderings, arbitrary coverage masks, synthetic
zero-mention pages, and unicode-mangled surfaces and URLs; the seeding
layer is additionally checked against ``numpy.random.default_rng``
stream-for-stream.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extract.base import ExtractorProfile
from repro.extract.linkage import EntityLinker
from repro.extract.synthesis import (
    PageRNGBank,
    SynthesisCaches,
    fallback_names,
    seed_array,
    synthesize_batch,
)
from repro.extract.text import TextExtractor
from repro.rng import split_seed
from repro.world.content import (
    AnnotationBlock,
    DomTree,
    Mention,
    TextDocument,
    WebTable,
)
from repro.world.labels import build_templates
from repro.world.webgen import WebPage

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def select_pages(pages, indices):
    return [pages[index % len(pages)] for index in indices]


def scalar_reference(extractor, pages, mask):
    """The frozen scalar loop ``extract_pages_batch`` must reproduce."""
    return [
        extractor.extract_page(page) if covered else []
        for page, covered in zip(pages, mask)
    ]


def fleet_scalar_reference(extractors, pages):
    """Page-major, extractor-major scalar synthesis — the pipeline order."""
    per_page = []
    for page in pages:
        records = []
        for extractor in extractors:
            if extractor.covers(page):
                records.extend(extractor.extract_page(page))
        per_page.append(records)
    return per_page


def decorate_mention(mention, suffix):
    return replace(mention, surface=mention.surface + suffix)


def decorate_element(element, suffix):
    """Append ``suffix`` to every mention surface inside ``element``."""
    if isinstance(element, TextDocument):
        return TextDocument(
            tuple(
                replace(
                    sentence,
                    subject=decorate_mention(sentence.subject, suffix),
                    objects=tuple(
                        decorate_mention(obj, suffix) for obj in sentence.objects
                    ),
                )
                for sentence in element.sentences
            )
        )
    if isinstance(element, DomTree):
        return DomTree(
            subject=decorate_mention(element.subject, suffix),
            rows=tuple(
                replace(
                    row,
                    cells=tuple(decorate_mention(cell, suffix) for cell in row.cells),
                )
                for row in element.rows
            ),
        )
    if isinstance(element, WebTable):
        return WebTable(
            caption=element.caption,
            headers=element.headers,
            rows=tuple(
                tuple(decorate_mention(cell, suffix) for cell in row)
                for row in element.rows
            ),
            subject_col=element.subject_col,
        )
    if isinstance(element, AnnotationBlock):
        return AnnotationBlock(
            subject=decorate_mention(element.subject, suffix),
            props=tuple(
                (prop, decorate_mention(value, suffix)) for prop, value in element.props
            ),
        )
    raise TypeError(f"not a content element: {element!r}")


def decorate_page(page, suffix):
    return replace(
        page, elements=tuple(decorate_element(el, suffix) for el in page.elements)
    )


@st.composite
def pages_with_mask(draw, max_pages=10):
    """Arbitrary page picks plus an equally long boolean mask."""
    indices = draw(st.lists(st.integers(0, 10_000), min_size=0, max_size=max_pages))
    bits = draw(
        st.lists(st.booleans(), min_size=len(indices), max_size=len(indices))
    )
    return indices, bits


# ---------------------------------------------------------------------------
# Fleet-wide parity
# ---------------------------------------------------------------------------


class TestFleetBatchParity:
    def test_fleet_exercises_every_kernel_and_both_confidence_modes(
        self, tiny_scenario
    ):
        # The parity properties only mean something if the fleet really
        # spans the contract surface: all four family kernels present,
        # confidence models both on and off, several model families.
        extractors = tiny_scenario.pipeline.extractors
        assert len(extractors) == 12
        assert all(extractor.has_synthesis_kernel for extractor in extractors)
        assert {type(e).__name__ for e in extractors} == {
            "TextExtractor",
            "DomExtractor",
            "TableExtractor",
            "AnnotationExtractor",
        }
        models = [e.confidence_model for e in extractors]
        assert any(model is None for model in models)
        names = {model.name for model in models if model is not None}
        assert len(names) >= 3

    @settings(max_examples=25, deadline=None)
    @given(indices=st.lists(st.integers(0, 10_000), max_size=10))
    def test_batch_matches_scalar_per_extractor(self, tiny_scenario, indices):
        pages = select_pages(list(tiny_scenario.corpus.pages), indices)
        for extractor in tiny_scenario.pipeline.extractors:
            mask = extractor.coverage_mask(pages)
            batch = extractor.extract_pages_batch(pages)
            assert batch == scalar_reference(extractor, pages, mask)

    @settings(max_examples=25, deadline=None)
    @given(indices=st.lists(st.integers(0, 10_000), max_size=10))
    def test_synthesize_batch_matches_fleet_scalar(self, tiny_scenario, indices):
        pages = select_pages(list(tiny_scenario.corpus.pages), indices)
        extractors = tiny_scenario.pipeline.extractors
        batch = synthesize_batch(extractors, pages)
        assert batch == fleet_scalar_reference(extractors, pages)

    def test_full_corpus_parity(self, tiny_scenario):
        pages = list(tiny_scenario.corpus.pages)
        extractors = tiny_scenario.pipeline.extractors
        batch = synthesize_batch(extractors, pages)
        assert batch == fleet_scalar_reference(extractors, pages)
        assert sum(len(records) for records in batch) > 0

    def test_record_equality_is_field_sensitive(self, tiny_scenario):
        # The ``==`` the parity assertions lean on must compare every
        # field — otherwise "bitwise" would be an empty claim.
        pages = list(tiny_scenario.corpus.pages)
        extractors = tiny_scenario.pipeline.extractors
        records = [
            record
            for page_records in synthesize_batch(extractors, pages[:20])
            for record in page_records
        ]
        record = next(r for r in records if r.confidence is not None)
        assert record == replace(record)
        assert record != replace(record, confidence=record.confidence + 1e-12)
        assert record != replace(record, pattern="__other__")

    def test_empty_page_list(self, tiny_scenario):
        extractors = tiny_scenario.pipeline.extractors
        assert synthesize_batch(extractors, []) == []
        for extractor in extractors:
            assert extractor.extract_pages_batch([]) == []

    def test_empty_fleet(self, tiny_scenario):
        pages = list(tiny_scenario.corpus.pages)[:5]
        assert synthesize_batch([], pages) == [[] for _ in pages]


# ---------------------------------------------------------------------------
# Page-order shuffles
# ---------------------------------------------------------------------------


class TestPageOrderShuffles:
    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(list(range(8))))
    def test_records_attach_to_pages_not_positions(self, tiny_scenario, order):
        # Per-page draws key on (seed, extractor, url) only, so a page
        # must synthesise the same records wherever it sits in the batch.
        pages = list(tiny_scenario.corpus.pages)[:8]
        extractors = tiny_scenario.pipeline.extractors
        straight = synthesize_batch(extractors, pages)
        shuffled = synthesize_batch(extractors, [pages[i] for i in order])
        for position, original_index in enumerate(order):
            assert shuffled[position] == straight[original_index]

    @settings(max_examples=20, deadline=None)
    @given(k=st.integers(0, 12))
    def test_prefix_batch_is_a_batch_prefix(self, tiny_scenario, k):
        pages = list(tiny_scenario.corpus.pages)[:12]
        extractors = tiny_scenario.pipeline.extractors
        assert synthesize_batch(extractors, pages[:k]) == (
            synthesize_batch(extractors, pages)[:k]
        )

    @settings(max_examples=20, deadline=None)
    @given(indices=st.lists(st.integers(0, 3), min_size=2, max_size=8))
    def test_duplicate_pages_synthesise_identically(self, tiny_scenario, indices):
        pages = select_pages(list(tiny_scenario.corpus.pages), indices)
        extractors = tiny_scenario.pipeline.extractors
        batch = synthesize_batch(extractors, pages)
        by_url = {}
        for page, records in zip(pages, batch):
            assert by_url.setdefault(page.url, records) == records


# ---------------------------------------------------------------------------
# Coverage masks
# ---------------------------------------------------------------------------


class TestCoverageMasks:
    def test_all_false_mask_yields_empty_lists(self, tiny_scenario):
        pages = list(tiny_scenario.corpus.pages)[:10]
        empty = np.zeros(len(pages), dtype=bool)
        for extractor in tiny_scenario.pipeline.extractors:
            assert extractor.extract_pages_batch(pages, mask=empty) == [
                [] for _ in pages
            ]

    @settings(max_examples=30, deadline=None)
    @given(spec=pages_with_mask(), pick=st.integers(0, 11))
    def test_arbitrary_mask_parity(self, tiny_scenario, spec, pick):
        # The mask is ground truth, not a hint: parity must hold even
        # for masks that disagree with the extractor's own coverage.
        indices, bits = spec
        pages = select_pages(list(tiny_scenario.corpus.pages), indices)
        mask = np.array(bits, dtype=bool)
        extractor = tiny_scenario.pipeline.extractors[pick]
        batch = extractor.extract_pages_batch(pages, mask=mask)
        assert batch == scalar_reference(extractor, pages, mask)

    @settings(max_examples=25, deadline=None)
    @given(target=st.integers(0, 9), pick=st.integers(0, 11))
    def test_masking_neighbours_leaves_a_page_untouched(
        self, tiny_scenario, target, pick
    ):
        # Uncovered pages consume no seeds, so dropping every other page
        # from the mask must not change what the surviving page emits.
        pages = list(tiny_scenario.corpus.pages)[:10]
        extractor = tiny_scenario.pipeline.extractors[pick]
        alone = np.zeros(len(pages), dtype=bool)
        alone[target] = True
        full = np.ones(len(pages), dtype=bool)
        assert (
            extractor.extract_pages_batch(pages, mask=alone)[target]
            == extractor.extract_pages_batch(pages, mask=full)[target]
        )

    def test_default_mask_is_the_coverage_mask(self, tiny_scenario):
        pages = list(tiny_scenario.corpus.pages)[:15]
        for extractor in tiny_scenario.pipeline.extractors:
            assert extractor.extract_pages_batch(pages) == (
                extractor.extract_pages_batch(
                    pages, mask=extractor.coverage_mask(pages)
                )
            )


# ---------------------------------------------------------------------------
# Synthetic pages: zero mentions and unicode surfaces
# ---------------------------------------------------------------------------

_SUBJECT = Mention(surface="Subject", kind="entity")

ZERO_MENTION_ELEMENTS = {
    "no-elements": (),
    "empty-text": (TextDocument(sentences=()),),
    "empty-dom": (DomTree(subject=_SUBJECT, rows=()),),
    "empty-table": (WebTable(caption="t", headers=(), rows=()),),
    "empty-annotation": (AnnotationBlock(subject=_SUBJECT, props=()),),
}


class TestSyntheticPages:
    @pytest.mark.parametrize("shape", sorted(ZERO_MENTION_ELEMENTS))
    def test_zero_mention_pages_parity(self, tiny_scenario, shape):
        pages = [
            WebPage(
                url=f"http://zero{index}.org/{shape}",
                site=f"zero{index}.org",
                category=category,
                assertions=(),
                elements=ZERO_MENTION_ELEMENTS[shape],
            )
            for index, category in enumerate(("wiki", "news", "general"))
        ]
        extractors = tiny_scenario.pipeline.extractors
        assert synthesize_batch(extractors, pages) == fleet_scalar_reference(
            extractors, pages
        )

    @settings(max_examples=20, deadline=None)
    @given(suffix=st.text(min_size=1, max_size=6), start=st.integers(0, 70))
    def test_unicode_surfaces_parity(self, tiny_scenario, suffix, start):
        # Mangled surfaces change linkage, parsing, and the memo keys in
        # SynthesisCaches — parity must survive all of it.
        pages = [
            decorate_page(page, suffix)
            for page in list(tiny_scenario.corpus.pages)[start : start + 4]
        ]
        extractors = tiny_scenario.pipeline.extractors
        assert synthesize_batch(extractors, pages) == fleet_scalar_reference(
            extractors, pages
        )

    @settings(max_examples=25, deadline=None)
    @given(tag=st.text(min_size=1, max_size=8), pick=st.integers(0, 11))
    def test_unicode_urls_parity(self, tiny_scenario, tag, pick):
        # URLs are the seed-array leaves; non-ASCII URLs must hash to
        # the same per-page stream on both paths.
        pages = [
            replace(page, url=page.url + "/" + tag)
            for page in list(tiny_scenario.corpus.pages)[:4]
        ]
        extractor = tiny_scenario.pipeline.extractors[pick]
        mask = extractor.coverage_mask(pages)
        assert extractor.extract_pages_batch(pages, mask=mask) == scalar_reference(
            extractor, pages, mask
        )


# ---------------------------------------------------------------------------
# Seed derivation: the vectorised SeedSequence/PCG64 path
# ---------------------------------------------------------------------------

EDGE_SEEDS = [0, 1, 2**31 - 1, 2**32 - 1, 2**32, 2**63, 2**64 - 1]


class TestSeedDerivation:
    @settings(max_examples=50, deadline=None)
    @given(
        master=st.integers(0, 2**63 - 1),
        leaves=st.lists(st.text(max_size=12), max_size=6),
    )
    def test_seed_array_matches_split_seed(self, master, leaves):
        array = seed_array(master, ("extract", "X"), leaves)
        assert array.dtype == np.uint64
        assert [int(value) for value in array] == [
            split_seed(master, "extract", "X", leaf) for leaf in leaves
        ]

    def test_bank_state_matches_default_rng_on_edge_seeds(self):
        bank = PageRNGBank(np.array(EDGE_SEEDS, dtype=np.uint64))
        for slot, seed in enumerate(EDGE_SEEDS):
            state = bank.reset(slot).bit_generator.state
            assert state == np.random.default_rng(seed).bit_generator.state

    @settings(max_examples=50, deadline=None)
    @given(seeds=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=8))
    def test_bank_state_matches_default_rng(self, seeds):
        bank = PageRNGBank(np.array(seeds, dtype=np.uint64))
        assert len(bank) == len(seeds)
        for slot, seed in enumerate(seeds):
            state = bank.reset(slot).bit_generator.state
            assert state == np.random.default_rng(seed).bit_generator.state

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**64 - 1))
    def test_bank_draws_match_default_rng(self, seed):
        bank = PageRNGBank(np.array([seed], dtype=np.uint64))
        generator = bank.reset(0)
        reference = np.random.default_rng(seed)
        assert generator.random() == reference.random()
        assert float(generator.standard_normal()) == float(reference.standard_normal())
        assert int(generator.integers(1000)) == int(reference.integers(1000))

    @settings(max_examples=20, deadline=None)
    @given(seeds=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=4))
    def test_reset_replays_the_stream(self, seeds):
        bank = PageRNGBank(np.array(seeds, dtype=np.uint64))
        slot = len(seeds) - 1
        generator = bank.reset(slot)
        first = [generator.random() for _ in range(3)]
        bank.reset(slot)
        assert [generator.random() for _ in range(3)] == first


# ---------------------------------------------------------------------------
# Scalar fallback (extractor without a family kernel)
# ---------------------------------------------------------------------------


def make_fallback_extractor(world):
    class NoKernelText(TextExtractor):
        _synthesize_page = None

    profile = ExtractorProfile(name="TXT-NOKERNEL", content_types=("TXT",))
    linker = EntityLinker("EL-X", world.entities, world.popularity, seed=3)
    return NoKernelText(
        profile, world.schema, linker, build_templates(world.schema), seed=11
    )


class TestScalarFallback:
    def test_fallback_advertises_no_kernel(self, tiny_scenario):
        fallback = make_fallback_extractor(tiny_scenario.world)
        assert not fallback.has_synthesis_kernel
        fleet = tiny_scenario.pipeline.extractors
        assert fallback_names(list(fleet) + [fallback]) == ("TXT-NOKERNEL",)
        assert fallback_names(fleet) == ()
        assert tiny_scenario.pipeline.synthesis_fallbacks() == ()

    @settings(max_examples=20, deadline=None)
    @given(indices=st.lists(st.integers(0, 10_000), max_size=10))
    def test_fallback_batch_matches_scalar(self, tiny_scenario, indices):
        fallback = make_fallback_extractor(tiny_scenario.world)
        pages = select_pages(list(tiny_scenario.corpus.pages), indices)
        mask = fallback.coverage_mask(pages)
        assert fallback.extract_pages_batch(pages) == scalar_reference(
            fallback, pages, mask
        )

    def test_fallback_inside_synthesize_batch(self, tiny_scenario):
        fallback = make_fallback_extractor(tiny_scenario.world)
        pages = list(tiny_scenario.corpus.pages)[:10]
        fleet = list(tiny_scenario.pipeline.extractors) + [fallback]
        assert synthesize_batch(fleet, pages) == fleet_scalar_reference(fleet, pages)


# ---------------------------------------------------------------------------
# Cache sharing
# ---------------------------------------------------------------------------


class TestCachesSharing:
    def test_one_shared_cache_equals_fresh_caches(self, tiny_scenario):
        pages = list(tiny_scenario.corpus.pages)[:15]
        extractors = tiny_scenario.pipeline.extractors
        shared = SynthesisCaches()
        with_shared = synthesize_batch(extractors, pages, caches=shared)
        assert with_shared == synthesize_batch(extractors, pages)
        for extractor in extractors:
            assert extractor.extract_pages_batch(
                pages, caches=SynthesisCaches()
            ) == extractor.extract_pages_batch(pages, caches=shared)

    def test_warm_caches_and_bank_memo_replay_identically(self, tiny_scenario):
        # Second call reuses the memoised PageRNGBank (same URL tuple)
        # and the warm SynthesisCaches — exactly how the pipeline's
        # batched backends run shard after shard.
        pages = list(tiny_scenario.corpus.pages)[:15]
        extractors = tiny_scenario.pipeline.extractors
        caches = SynthesisCaches()
        first = synthesize_batch(extractors, pages, caches=caches)
        second = synthesize_batch(extractors, pages, caches=caches)
        assert first == second
        assert second == fleet_scalar_reference(extractors, pages)
