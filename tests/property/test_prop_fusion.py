"""Property-based tests for the fusion posterior math.

These check the algebraic invariants the paper's methods rely on, over
arbitrary claim matrices: probabilities live in [0, 1], per-item mass is
bounded, agreement helps, and POPACCU's signature behaviours hold for any
accuracy level — not just the defaults exercised by the unit tests.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.accu import accu_item_posteriors
from repro.fusion.popaccu import popaccu_item_posteriors
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(name: str) -> Triple:
    return Triple("/m/1", "t/t/p", StringValue(name))


@st.composite
def claim_matrices(draw):
    """A random data item: values, provenances, accuracies."""
    n_values = draw(st.integers(min_value=1, max_value=5))
    n_provs = draw(st.integers(min_value=n_values, max_value=12))
    accuracies = {
        (f"S{i}",): draw(
            st.floats(min_value=0.01, max_value=0.99, allow_nan=False)
        )
        for i in range(n_provs)
    }
    # Partition provenances over values so every value has >= 1 claim.
    assignment = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_values - 1),
                min_size=n_provs - n_values,
                max_size=n_provs - n_values,
            )
        )
        + list(range(n_values))
    )
    claims: dict = {}
    for prov_index, value_index in enumerate(assignment):
        claims.setdefault(t(f"v{value_index}"), set()).add((f"S{prov_index}",))
    return claims, accuracies


class TestAccuProperties:
    @given(claim_matrices(), st.integers(min_value=1, max_value=1000))
    @settings(max_examples=150, deadline=None)
    def test_posteriors_are_probabilities(self, matrix, n_false):
        claims, accuracies = matrix
        posteriors = accu_item_posteriors(claims, accuracies, n_false)
        assert set(posteriors) == set(claims)
        for probability in posteriors.values():
            assert 0.0 <= probability <= 1.0
        assert sum(posteriors.values()) <= 1.0 + 1e-9

    @given(claim_matrices())
    @settings(max_examples=100, deadline=None)
    def test_more_support_never_hurts(self, matrix):
        """Adding an extra supporting provenance (accuracy > 1/(N+1), i.e.
        positive vote count) cannot lower a value's posterior."""
        claims, accuracies = matrix
        target = next(iter(claims))
        before = accu_item_posteriors(claims, accuracies, 100)[target]
        extra = ("S_extra",)
        accuracies2 = dict(accuracies)
        accuracies2[extra] = 0.9
        claims2 = {k: set(v) for k, v in claims.items()}
        claims2[target].add(extra)
        after = accu_item_posteriors(claims2, accuracies2, 100)[target]
        assert after >= before - 1e-9

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_source_posterior_equals_accuracy(self, accuracy, n_false):
        """With one source, ACCU's posterior is exactly the accuracy, for
        any A and N: e^τ / (e^τ + N) with τ = ln(N·A/(1−A)) simplifies to A."""
        posteriors = accu_item_posteriors({t("a"): {("S",)}}, {("S",): accuracy}, n_false)
        assert posteriors[t("a")] == pytest.approx(accuracy, abs=1e-9)


class TestPopAccuProperties:
    @given(claim_matrices())
    @settings(max_examples=150, deadline=None)
    def test_posteriors_are_probabilities(self, matrix):
        claims, accuracies = matrix
        posteriors = popaccu_item_posteriors(claims, accuracies)
        assert set(posteriors) == set(claims)
        for probability in posteriors.values():
            assert 0.0 <= probability <= 1.0
        # Mass may be < 1 (the OTHER candidate holds the rest) but never > 1.
        assert sum(posteriors.values()) <= 1.0 + 1e-9

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=100, deadline=None)
    def test_single_provenance_sticks_to_accuracy(self, accuracy):
        """The Figure 9 'valley' generator: a lone provenance's claim keeps
        exactly the provenance's accuracy as its probability."""
        posteriors = popaccu_item_posteriors({t("a"): {("S",)}}, {("S",): accuracy})
        assert posteriors[t("a")] == pytest.approx(accuracy, abs=1e-9)

    @given(claim_matrices())
    @settings(max_examples=100, deadline=None)
    def test_symmetric_items_get_symmetric_posteriors(self, matrix):
        """Renaming values cannot change the posterior multiset."""
        claims, accuracies = matrix
        renamed = {
            Triple("/m/1", "t/t/p", StringValue("renamed_" + tr.obj.text)): provs
            for tr, provs in claims.items()
        }
        original = sorted(popaccu_item_posteriors(claims, accuracies).values())
        rerun = sorted(popaccu_item_posteriors(renamed, accuracies).values())
        assert original == pytest.approx(rerun)

    @given(
        st.integers(min_value=2, max_value=10),
        st.floats(min_value=0.55, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_unanimity_beats_any_split(self, n_provs, accuracy):
        """All provenances agreeing yields a higher posterior for the value
        than the same provenances split across two values."""
        accuracies = {(f"S{i}",): accuracy for i in range(n_provs)}
        unanimous = popaccu_item_posteriors(
            {t("a"): {(f"S{i}",) for i in range(n_provs)}}, accuracies
        )[t("a")]
        half = n_provs // 2 or 1
        split = popaccu_item_posteriors(
            {
                t("a"): {(f"S{i}",) for i in range(half)},
                t("b"): {(f"S{i}",) for i in range(half, n_provs)},
            },
            accuracies,
        )[t("a")]
        assert unanimous >= split - 1e-9


class TestCrossMethodProperties:
    @given(claim_matrices())
    @settings(max_examples=100, deadline=None)
    def test_methods_agree_on_ranking_of_dominant_value(self, matrix):
        """Whatever the parameters, the value with the most provenances is
        never ranked strictly last by either Bayesian method when all
        provenances share one accuracy."""
        claims, _ = matrix
        if len(claims) < 2:
            return
        accuracies = {
            prov: 0.8 for provs in claims.values() for prov in provs
        }
        top = max(claims, key=lambda tr: len(claims[tr]))
        bottom = min(claims, key=lambda tr: len(claims[tr]))
        if len(claims[top]) == len(claims[bottom]):
            return
        for fn in (
            lambda: accu_item_posteriors(claims, accuracies, 100),
            lambda: popaccu_item_posteriors(claims, accuracies),
        ):
            posteriors = fn()
            assert posteriors[top] >= posteriors[bottom] - 1e-9
