"""Unit tests for ground-truth world generation."""

import pytest

from repro.kb.values import EntityRef
from repro.world.config import WorldConfig
from repro.world.worldgen import generate_world

LOCATION = "location/location"


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig(n_types=6, n_entities=100)
        a = generate_world(config, seed=1)
        b = generate_world(config, seed=1)
        assert a.truths == b.truths
        assert [e.entity_id for e in a.entities] == [e.entity_id for e in b.entities]

    def test_different_seed_different_world(self):
        config = WorldConfig(n_types=6, n_entities=100)
        a = generate_world(config, seed=1)
        b = generate_world(config, seed=2)
        assert a.truths != b.truths


class TestStructure:
    def test_entity_budget_roughly_met(self, small_world):
        assert len(small_world.entities) == pytest.approx(200, rel=0.2)

    def test_every_truth_subject_exists(self, small_world):
        for item in small_world.truths:
            assert item.subject in small_world.entities

    def test_every_truth_predicate_in_schema(self, small_world):
        for item in small_world.truths:
            assert item.predicate in small_world.schema.predicates

    def test_functional_items_have_single_truth(self, small_world):
        for item, values in small_world.truths.items():
            predicate = small_world.schema.predicate(item.predicate)
            if predicate.functional:
                assert len(values) == 1

    def test_non_functional_respect_max_truths(self, small_world):
        for item, values in small_world.truths.items():
            predicate = small_world.schema.predicate(item.predicate)
            assert len(values) <= predicate.max_truths

    def test_multi_truth_items_exist(self, small_world):
        assert any(len(values) > 1 for values in small_world.truths.values())

    def test_popularity_covers_all_entities(self, small_world):
        for entity in small_world.entities:
            assert small_world.popularity.get(entity.entity_id, 0) > 0


class TestLocations:
    def test_hierarchy_is_populated(self, small_world):
        locations = small_world.entities.of_type(LOCATION)
        in_hierarchy = [e for e in locations if e.entity_id in small_world.hierarchy]
        assert len(in_hierarchy) > len(locations) * 0.8

    def test_hierarchical_truths_point_at_leaves(self, small_world):
        hierarchy = small_world.hierarchy
        for item, values in small_world.truths.items():
            predicate = small_world.schema.predicate(item.predicate)
            if not predicate.hierarchical:
                continue
            for value in values:
                assert isinstance(value, EntityRef)
                assert hierarchy.children(value.entity_id) == []

    def test_chains_have_depth(self, small_world):
        depths = [
            small_world.hierarchy.depth(e.entity_id)
            for e in small_world.entities.of_type(LOCATION)
            if e.entity_id in small_world.hierarchy
        ]
        assert max(depths) >= 3  # continent > country > region > city


class TestAmbiguity:
    def test_confusable_surfaces_exist(self, small_world):
        assert len(small_world.entities.ambiguous_surfaces()) > 0

    def test_alias_sharing_creates_multi_candidate_surfaces(self, small_world):
        surface = small_world.entities.ambiguous_surfaces()[0]
        assert len(small_world.entities.candidates_for(surface)) >= 2
