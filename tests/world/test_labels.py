"""Unit tests for labels and sentence templates."""

from repro.world.catalog import build_schema
from repro.world.labels import (
    ano_prop,
    build_templates,
    dom_label,
    header_candidates,
    tbl_header,
    templates_for_predicate,
)


class TestLabels:
    def test_dom_label_special_case(self):
        assert dom_label("people/person/birth_date") == "Born"

    def test_dom_label_prettify_default(self):
        assert dom_label("film/film/director") == "Director"

    def test_tbl_header_collides_years(self):
        assert tbl_header("film/film/release_year") == "Year"
        assert tbl_header("book/book/publication_year") == "Year"

    def test_header_candidates_sees_all_year_predicates(self):
        schema, _ = build_schema(12)
        candidates = header_candidates(schema, "Year")
        assert len(candidates) >= 2
        assert "film/film/release_year" in candidates

    def test_ano_prop_camel_case(self):
        assert ano_prop("people/person/birth_date") == "birthDate"
        assert ano_prop("film/film/director") == "director"

    def test_ano_prop_collision_across_types(self):
        assert ano_prop("film/film/release_year") == ano_prop(
            "music/album/release_year"
        )


class TestTemplates:
    def test_every_predicate_has_templates(self):
        schema, _ = build_schema(12)
        templates = build_templates(schema)
        for pid in schema.predicates:
            assert templates_for_predicate(templates, pid), pid

    def test_merged_born_template_present(self):
        schema, _ = build_schema(12)
        templates = build_templates(schema)
        merged = [t for t in templates.values() if t.merged]
        assert merged
        born = templates["t.people.person.born_full"]
        assert born.slots == (
            "people/person/birth_date",
            "people/person/birth_place",
        )

    def test_conjunction_templates_for_non_functional(self):
        schema, _ = build_schema(12)
        templates = build_templates(schema)
        for pid, predicate in schema.predicates.items():
            if not predicate.functional:
                conj = [
                    t
                    for t in templates_for_predicate(templates, pid)
                    if t.n_objects == 2 and not t.merged
                ]
                assert conj, pid

    def test_formats_reference_all_slots(self):
        schema, _ = build_schema(12)
        for spec in build_templates(schema).values():
            assert "{subj}" in spec.fmt
            for i in range(spec.n_objects):
                assert f"{{obj{i}}}" in spec.fmt

    def test_template_ids_unique_and_stable(self):
        schema, _ = build_schema(12)
        a = build_templates(schema)
        b = build_templates(schema)
        assert a.keys() == b.keys()
