"""Unit tests for content models and the content-type tagger."""

import pytest

from repro.world.content import (
    AnnotationBlock,
    DomRow,
    DomTree,
    Mention,
    Sentence,
    TextDocument,
    WebTable,
    content_type_of,
)


def mention(surface="X", kind="entity", fact_ref=None):
    return Mention(surface=surface, kind=kind, fact_ref=fact_ref)


class TestContentTypeOf:
    def test_text(self):
        doc = TextDocument(sentences=())
        assert content_type_of(doc) == "TXT"

    def test_dom(self):
        tree = DomTree(subject=mention(), rows=())
        assert content_type_of(tree) == "DOM"

    def test_table(self):
        table = WebTable(caption="c", headers=("Name",), rows=())
        assert content_type_of(table) == "TBL"

    def test_annotation(self):
        block = AnnotationBlock(subject=mention(), props=())
        assert content_type_of(block) == "ANO"

    def test_unknown_rejected(self):
        with pytest.raises(TypeError):
            content_type_of("not content")


class TestStructures:
    def test_mention_frozen(self):
        with pytest.raises(AttributeError):
            mention().surface = "Y"

    def test_sentence_holds_objects(self):
        subject = mention("Tom Cruise")
        obj = mention("1962-07-03", kind="date", fact_ref=0)
        sentence = Sentence(
            template_id="t.x.0",
            subject=subject,
            objects=(obj,),
            text="Tom Cruise was born on 1962-07-03.",
        )
        assert sentence.objects[0].fact_ref == 0
        assert sentence.subject.fact_ref is None

    def test_dom_row_merged_flags(self):
        row = DomRow(
            label="Born",
            cells=(mention(kind="string"), mention(kind="date"), mention()),
            merged=True,
            cell_labels=("name", "date", "place"),
        )
        assert row.merged
        assert len(row.cells) == len(row.cell_labels)

    def test_plain_row_defaults(self):
        row = DomRow(label="Director", cells=(mention(),))
        assert not row.merged
        assert row.cell_labels is None

    def test_table_subject_col(self):
        table = WebTable(
            caption="Films",
            headers=("#", "Name", "Year"),
            rows=((mention("1", "number"), mention("Top Gun"), mention("1986", "number")),),
            subject_col=1,
        )
        assert table.rows[0][table.subject_col].surface == "Top Gun"
