"""Unit tests for world/web configuration validation."""

import pytest

from repro.errors import ConfigError
from repro.world.config import WebConfig, WorldConfig


class TestWorldConfig:
    def test_defaults_valid(self):
        WorldConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_types": 1},
            {"n_entities": 5},
            {"wrong_pool_size": 0},
            {"fact_fill_rate": 1.5},
            {"fact_fill_rate": -0.1},
            {"freebase_item_coverage": 2.0},
            {"confusable_rate": -1.0},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ConfigError):
            WorldConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            WorldConfig().n_types = 99


class TestWebConfig:
    def test_defaults_valid(self):
        WebConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_sites": 0},
            {"n_sites": 50, "n_pages": 10},
            {"facts_per_page_mean": 0},
            {"site_error_alpha": 0},
            {"copy_rate": 1.2},
            {"content_mix": {}},
            {"content_mix": {"VIDEO": 1.0}},
            {"content_mix": {"DOM": -1.0}},
            {"content_mix": {"DOM": 0.0}},
            {"max_entities_per_page": 0},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ConfigError):
            WebConfig(**kwargs)

    def test_custom_mix_accepted(self):
        config = WebConfig(content_mix={"DOM": 0.5, "TXT": 0.5})
        assert set(dict(config.content_mix)) == {"DOM", "TXT"}
