"""Unit tests for the type/predicate catalogue."""

import pytest

from repro.world.catalog import (
    CATALOG,
    build_schema,
    predicate_spec,
    selected_types,
)


class TestSelectedTypes:
    def test_core_types_always_present(self):
        specs = selected_types(2)
        ids = {s.type_id for s in specs}
        assert {"location/location", "organization/organization", "people/person"} <= ids

    def test_full_catalog(self):
        assert len(selected_types(len(CATALOG))) == len(CATALOG)

    def test_oversized_request_clamped(self):
        assert len(selected_types(999)) == len(CATALOG)


class TestBuildSchema:
    def test_schema_validates(self):
        for n in (2, 5, len(CATALOG)):
            schema, _specs = build_schema(n)
            schema.validate()

    def test_non_functional_share_near_paper(self):
        """Table 3: 72% of predicates are non-functional; the catalogue
        should be in that neighbourhood (±20 points) at full size."""
        schema, _ = build_schema(len(CATALOG))
        non_functional = 1.0 - schema.functional_share()
        assert 0.3 <= non_functional <= 0.8

    def test_confusable_pairs_survive(self):
        schema, _ = build_schema(len(CATALOG))
        author = schema.predicate("book/book/author")
        assert author.confusable_with == "book/book/editor"

    def test_hierarchical_predicates_exist(self):
        schema, _ = build_schema(len(CATALOG))
        assert any(p.hierarchical for p in schema.predicates.values())

    def test_dropped_object_types_remove_predicates(self):
        # With few types, predicates pointing at excluded types vanish.
        schema, _ = build_schema(2)
        for predicate in schema.predicates.values():
            if predicate.object_type_id is not None:
                assert predicate.object_type_id in schema.types


class TestPredicateSpec:
    def test_lookup(self):
        _schema, specs = build_schema(len(CATALOG))
        spec = predicate_spec(specs, "people/person/birth_date")
        assert spec.name == "birth_date"

    def test_lookup_unknown_raises(self):
        _schema, specs = build_schema(len(CATALOG))
        with pytest.raises(KeyError):
            predicate_spec(specs, "no/such/predicate")
