"""Test package: world (package __init__ so duplicate basenames import distinctly)."""
