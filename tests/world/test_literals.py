"""Unit tests for literal rendering and parsing (incl. the date hazard)."""

import pytest

from repro.kb.values import DateValue, NumberValue, StringValue
from repro.world.literals import (
    DATE_STYLE_EU,
    DATE_STYLE_ISO,
    DATE_STYLE_US,
    parse_literal,
    parse_literal_naive,
    render_value,
)


class TestRender:
    def test_iso_date(self):
        assert render_value(DateValue("1962-07-03")) == "1962-07-03"

    def test_us_date(self):
        assert render_value(DateValue("1962-07-03"), DATE_STYLE_US) == "7/3/1962"

    def test_eu_date(self):
        assert render_value(DateValue("1962-07-03"), DATE_STYLE_EU) == "3.7.1962"

    def test_plain_number(self):
        assert render_value(NumberValue(1234567.0)) == "1234567"

    def test_grouped_number(self):
        assert render_value(NumberValue(1234567.0), grouped_numbers=True) == "1,234,567"

    def test_fractional_number(self):
        assert render_value(NumberValue(2.5)) == "2.5"

    def test_string(self):
        assert render_value(StringValue("hello")) == "hello"

    def test_entity_rejected(self):
        from repro.kb.values import EntityRef

        with pytest.raises(TypeError):
            render_value(EntityRef("/m/1"))


class TestCorrectParser:
    @pytest.mark.parametrize("style", [DATE_STYLE_ISO, DATE_STYLE_US, DATE_STYLE_EU])
    def test_roundtrip_all_styles(self, style):
        value = DateValue("1962-07-03")
        assert parse_literal(render_value(value, style), "date") == value

    def test_number_roundtrip_with_grouping(self):
        value = NumberValue(1234567.0)
        surface = render_value(value, grouped_numbers=True)
        assert parse_literal(surface, "number") == value

    def test_garbage_date_is_none(self):
        assert parse_literal("not a date", "date") is None
        assert parse_literal("1/2", "date") is None

    def test_garbage_number_is_none(self):
        assert parse_literal("twelve", "number") is None

    def test_unknown_kind_is_none(self):
        assert parse_literal("x", "entity") is None


class TestNaiveParser:
    def test_naive_swaps_eu_dates_when_plausible(self):
        # 3.7.1962 is July 3rd; the naive parser reads March 7th.
        value = parse_literal_naive("3.7.1962", "date")
        assert value == DateValue("1962-03-07")

    def test_naive_falls_back_when_month_invalid(self):
        # 25.3.1999 cannot be month=25, so even naive gets it right.
        value = parse_literal_naive("25.3.1999", "date")
        assert value == DateValue("1999-03-25")

    def test_naive_correct_on_iso(self):
        assert parse_literal_naive("1962-07-03", "date") == DateValue("1962-07-03")

    def test_naive_correct_on_us(self):
        assert parse_literal_naive("7/3/1962", "date") == DateValue("1962-07-03")

    def test_naive_matches_correct_for_numbers(self):
        assert parse_literal_naive("1,234", "number") == parse_literal(
            "1,234", "number"
        )
