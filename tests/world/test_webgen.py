"""Unit tests for web corpus generation."""

import pytest

from repro.world.config import WebConfig, WorldConfig
from repro.world.content import (
    AnnotationBlock,
    DomTree,
    TextDocument,
    WebTable,
    content_type_of,
)
from repro.world.webgen import generate_corpus
from repro.world.worldgen import generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_types=8, n_entities=200), seed=3)


@pytest.fixture(scope="module")
def corpus(world):
    return generate_corpus(world, WebConfig(n_sites=20, n_pages=150), seed=3)


class TestDeterminism:
    def test_same_seed_same_corpus(self, world):
        config = WebConfig(n_sites=10, n_pages=60)
        a = generate_corpus(world, config, seed=5)
        b = generate_corpus(world, config, seed=5)
        assert [p.url for p in a.pages] == [p.url for p in b.pages]
        assert [p.assertions for p in a.pages] == [p.assertions for p in b.pages]

    def test_different_seed_differs(self, world):
        config = WebConfig(n_sites=10, n_pages=60)
        a = generate_corpus(world, config, seed=5)
        b = generate_corpus(world, config, seed=6)
        assert [p.assertions for p in a.pages] != [p.assertions for p in b.pages]


class TestSites:
    def test_site_count(self, corpus):
        assert len(corpus.sites) == 20

    def test_wiki_sites_exist_and_are_clean(self, corpus):
        wikis = [s for s in corpus.sites.values() if s.category == "wiki"]
        assert wikis
        general = [s for s in corpus.sites.values() if s.category == "general"]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean([s.error_rate for s in wikis]) < mean(
            [s.error_rate for s in general]
        )

    def test_every_page_belongs_to_a_site(self, corpus):
        for page in corpus.pages:
            assert page.site in corpus.sites


class TestAssertions:
    def test_assertions_reference_world_items(self, corpus, world):
        for page in corpus.pages[:50]:
            for assertion in page.assertions:
                item = assertion.triple.data_item
                # Every asserted item exists in the world (wrong *values*
                # are injected, not wrong items).
                assert world.truth_values(item)

    def test_truth_flags_consistent(self, corpus, world):
        for page in corpus.pages[:50]:
            for assertion in page.assertions:
                assert assertion.true_in_world == world.is_true(assertion.triple)
                if assertion.exact:
                    assert world.is_true_exact(assertion.triple)

    def test_source_errors_present_but_minority(self, corpus):
        total = corpus.n_assertions()
        errors = sum(a.source_error for p in corpus.pages for a in p.assertions)
        assert 0 < errors < total * 0.5

    def test_copying_produces_copied_from(self, world):
        config = WebConfig(n_sites=10, n_pages=200, copy_rate=0.5)
        corpus = generate_corpus(world, config, seed=4)
        copied = [
            a for p in corpus.pages for a in p.assertions if a.copied_from is not None
        ]
        assert copied
        urls = {p.url for p in corpus.pages}
        for assertion in copied:
            assert assertion.copied_from in urls


class TestRendering:
    def test_fact_refs_point_into_assertions(self, corpus):
        for page in corpus.pages:
            n = len(page.assertions)
            for element in page.elements:
                mentions = _mentions_of(element)
                for mention in mentions:
                    if mention.fact_ref is not None:
                        assert 0 <= mention.fact_ref < n

    def test_all_content_types_rendered(self, corpus):
        kinds = {
            content_type_of(e) for p in corpus.pages for e in p.elements
        }
        assert kinds == {"TXT", "DOM", "TBL", "ANO"}

    def test_dom_dominates_content_mix(self, corpus):
        from collections import Counter

        counts = Counter(
            content_type_of(e) for p in corpus.pages for e in p.elements
        )
        assert counts["DOM"] == max(counts.values())

    def test_merged_born_rows_rendered_somewhere(self, corpus):
        merged = [
            row
            for p in corpus.pages
            for e in p.elements
            if isinstance(e, DomTree)
            for row in e.rows
            if row.merged
        ]
        assert merged
        for row in merged:
            assert len(row.cells) == 3  # name, date, place

    def test_tables_have_consistent_width(self, corpus):
        for page in corpus.pages:
            for element in page.elements:
                if isinstance(element, WebTable):
                    for row in element.rows:
                        assert len(row) == len(element.headers)

    def test_sentences_have_text_with_surfaces(self, corpus):
        for page in corpus.pages:
            for element in page.elements:
                if isinstance(element, TextDocument):
                    for sentence in element.sentences:
                        for obj in sentence.objects:
                            assert obj.surface in sentence.text

    def test_annotation_props_reference_assertions(self, corpus):
        for page in corpus.pages:
            for element in page.elements:
                if isinstance(element, AnnotationBlock):
                    for _prop, mention in element.props:
                        assert mention.fact_ref is not None


def _mentions_of(element):
    if isinstance(element, TextDocument):
        return [m for s in element.sentences for m in (s.subject, *s.objects)]
    if isinstance(element, DomTree):
        return [element.subject, *[c for r in element.rows for c in r.cells]]
    if isinstance(element, WebTable):
        return [c for row in element.rows for c in row]
    if isinstance(element, AnnotationBlock):
        return [element.subject, *[m for _p, m in element.props]]
    raise AssertionError(f"unknown element {element!r}")
