"""Unit tests for the deterministic name forge."""

import numpy as np
import pytest

from repro.world.naming import NameForge


@pytest.fixture
def forge():
    return NameForge(rng=np.random.default_rng(42))


class TestUniqueness:
    def test_person_names_unique(self, forge):
        names = [forge.person_name() for _ in range(200)]
        assert len(set(names)) == 200

    def test_uniqueness_spans_kinds(self, forge):
        names = [forge.person_name() for _ in range(50)]
        names += [forge.place_name() for _ in range(50)]
        names += [forge.org_name() for _ in range(50)]
        names += [forge.work_title() for _ in range(50)]
        assert len(set(names)) == 200


class TestDeterminism:
    def test_same_seed_same_names(self):
        a = NameForge(rng=np.random.default_rng(7))
        b = NameForge(rng=np.random.default_rng(7))
        assert [a.person_name() for _ in range(10)] == [
            b.person_name() for _ in range(10)
        ]

    def test_different_seed_different_names(self):
        a = NameForge(rng=np.random.default_rng(7))
        b = NameForge(rng=np.random.default_rng(8))
        assert [a.person_name() for _ in range(10)] != [
            b.person_name() for _ in range(10)
        ]


class TestShapes:
    def test_person_name_has_multiple_words(self, forge):
        assert len(forge.person_name().split()) >= 2

    def test_mountain_prefix(self, forge):
        assert forge.mountain_name().startswith("Mount ")

    def test_team_name_pluralised(self, forge):
        assert forge.team_name().endswith("s")

    def test_alias_differs_from_name(self, forge):
        name = forge.person_name()
        alias = forge.alias_for(name)
        assert alias != name
        assert alias  # non-empty

    def test_date_in_range(self, forge):
        for _ in range(50):
            iso = forge.date(1950, 1960)
            year, month, day = (int(x) for x in iso.split("-"))
            assert 1950 <= year <= 1960
            assert 1 <= month <= 12
            assert 1 <= day <= 28

    def test_literal_vocabularies_nonempty(self, forge):
        for method in (
            "profession",
            "genre",
            "industry",
            "sport",
            "species_class",
            "language",
        ):
            assert getattr(forge, method)()
