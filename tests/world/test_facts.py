"""Unit tests for the World truth API, wrong pools and Freebase snapshot."""

import pytest

from repro.kb.triples import Triple
from repro.kb.values import EntityRef
from repro.world.config import WorldConfig
from repro.world.facts import build_freebase_snapshot
from repro.world.worldgen import generate_world


class TestTruthQueries:
    def test_exact_truth(self, small_world):
        item = next(iter(small_world.truths))
        value = small_world.truths[item][0]
        assert small_world.is_true_exact(Triple(item.subject, item.predicate, value))

    def test_wrong_value_not_true(self, small_world):
        item = next(iter(small_world.truths))
        values, _ = small_world.wrong_pool(item)
        if values:
            triple = Triple(item.subject, item.predicate, values[0])
            assert not small_world.is_true_exact(triple)

    def test_generalization_is_true(self, small_world):
        # Find a hierarchical truth and generalise it.
        for item, values in small_world.truths.items():
            predicate = small_world.schema.predicate(item.predicate)
            if not predicate.hierarchical:
                continue
            value = values[0]
            ancestors = small_world.hierarchy.ancestors(value.entity_id)
            if not ancestors:
                continue
            general = Triple(item.subject, item.predicate, EntityRef(ancestors[0]))
            assert small_world.is_generalization(general)
            assert small_world.is_true(general)
            assert not small_world.is_true_exact(general)
            return
        pytest.skip("no hierarchical truth with ancestors in this world")

    def test_truth_count(self, small_world):
        item = next(iter(small_world.truths))
        assert small_world.truth_count(item) == len(small_world.truths[item])

    def test_true_triples_iterates_all(self, small_world):
        n = sum(len(v) for v in small_world.truths.values())
        assert len(list(small_world.true_triples())) == n


class TestWrongPools:
    def test_pool_excludes_truths(self, small_world):
        for item in list(small_world.truths)[:50]:
            values, _weights = small_world.wrong_pool(item)
            truths = set(small_world.truths[item])
            assert not (set(values) & truths)

    def test_pool_deterministic_and_cached(self, small_world):
        item = next(iter(small_world.truths))
        first = small_world.wrong_pool(item)
        second = small_world.wrong_pool(item)
        assert first is second  # cached

    def test_pool_weights_normalised(self, small_world):
        item = next(iter(small_world.truths))
        values, weights = small_world.wrong_pool(item)
        if values:
            assert weights.sum() == pytest.approx(1.0)
            assert len(weights) == len(values)

    def test_draw_wrong_value_comes_from_pool(self, small_world):
        import numpy as np

        item = next(iter(small_world.truths))
        values, _ = small_world.wrong_pool(item)
        if not values:
            pytest.skip("empty pool")
        rng = np.random.default_rng(0)
        for popular in (True, False):
            drawn = small_world.draw_wrong_value(item, rng, popular=popular)
            assert drawn in values


class TestFreebaseSnapshot:
    def test_snapshot_deterministic(self, small_world):
        a = build_freebase_snapshot(small_world)
        b = build_freebase_snapshot(small_world)
        assert set(a) == set(b)

    def test_snapshot_covers_subset_of_items(self, small_world):
        snapshot = build_freebase_snapshot(small_world)
        coverage = len(snapshot.data_items()) / len(small_world.truths)
        expected = small_world.config.freebase_item_coverage
        assert coverage == pytest.approx(expected, abs=0.12)

    def test_snapshot_mostly_true(self, small_world):
        snapshot = build_freebase_snapshot(small_world)
        truths = sum(1 for t in snapshot if small_world.is_true(t))
        assert truths / len(snapshot) > 0.9

    def test_snapshot_contains_some_errors(self):
        config = WorldConfig(n_types=6, n_entities=300, freebase_error_rate=0.2)
        world = generate_world(config, seed=9)
        snapshot = build_freebase_snapshot(world)
        wrong = sum(1 for t in snapshot if not world.is_true(t))
        assert wrong > 0
