"""Good/bad fixture pairs for every DET rule.

Each rule must (a) fire on its bad fixture and (b) stay silent on the
good twin — the twin is always the bad snippet written the contract-
compliant way, so the pair documents the repair as well as the defect.
Fixtures are virtual files: paths are chosen to land inside each rule's
real scope (``KERNEL_MODULES`` / ``PAYLOAD_MODULES`` / ``src/repro``).
"""

from __future__ import annotations

from repro.analysis.lint import lint_sources
from repro.analysis.rules import (
    ALL_RULES,
    DET001,
    DET002,
    DET003,
    DET004,
    DET005,
    DET006,
)
from repro.analysis.rules.common import KERNEL_MODULES, PAYLOAD_MODULES

#: Any path inside src/repro works for the repo-wide rules.
ANY_PATH = "src/repro/somewhere.py"
KERNEL_PATH = KERNEL_MODULES[0]
PAYLOAD_PATH = PAYLOAD_MODULES[0]


def _rules_fired(files, rule):
    result = lint_sources(files, rules=[rule])
    return [f.rule for f in result.findings]


def test_registry_covers_all_six_rules():
    assert [rule.id for rule in ALL_RULES] == [
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "DET005",
        "DET006",
    ]


class TestDET001Rng:
    def test_bad_stdlib_random_import(self):
        assert _rules_fired({ANY_PATH: "import random\n"}, DET001) == ["DET001"]

    def test_bad_from_random_import(self):
        assert _rules_fired(
            {ANY_PATH: "from random import shuffle\n"}, DET001
        ) == ["DET001"]

    def test_bad_legacy_numpy_global_rng(self):
        snippet = "import numpy as np\nx = np.random.shuffle(values)\n"
        assert _rules_fired({ANY_PATH: snippet}, DET001) == ["DET001"]

    def test_bad_unseeded_default_rng(self):
        snippet = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rules_fired({ANY_PATH: snippet}, DET001) == ["DET001"]

    def test_bad_os_urandom(self):
        snippet = "import os\ntoken = os.urandom(8)\n"
        assert _rules_fired({ANY_PATH: snippet}, DET001) == ["DET001"]

    def test_good_seeded_named_stream(self):
        snippet = (
            "import numpy as np\n"
            "from repro.rng import split_seed\n"
            "rng = np.random.default_rng(split_seed(seed, 'extract', url))\n"
        )
        assert _rules_fired({ANY_PATH: snippet}, DET001) == []

    def test_outside_src_repro_is_ignored(self):
        assert _rules_fired({"benchmarks/run.py": "import random\n"}, DET001) == []


class TestDET002Order:
    def test_bad_loop_over_set_accumulating(self):
        snippet = (
            "def reduce_(provs: set[str]) -> float:\n"
            "    total = 0.0\n"
            "    for prov in provs:\n"
            "        total += score(prov)\n"
            "    return total\n"
        )
        assert _rules_fired({KERNEL_PATH: snippet}, DET002) == ["DET002"]

    def test_good_sorted_loop(self):
        snippet = (
            "def reduce_(provs: set[str]) -> float:\n"
            "    total = 0.0\n"
            "    for prov in sorted(provs):\n"
            "        total += score(prov)\n"
            "    return total\n"
        )
        assert _rules_fired({KERNEL_PATH: snippet}, DET002) == []

    def test_bad_comprehension_over_set(self):
        snippet = "seen = {1, 2}\nordered = [x * 2 for x in seen]\n"
        assert _rules_fired({KERNEL_PATH: snippet}, DET002) == ["DET002"]

    def test_bad_sum_of_set(self):
        snippet = "values: set[float] = load()\ntotal = sum(values)\n"
        assert _rules_fired({KERNEL_PATH: snippet}, DET002) == ["DET002"]

    def test_good_order_insensitive_sinks(self):
        snippet = (
            "values: set[float] = load()\n"
            "n = len(values)\n"
            "top = max(values)\n"
            "ok = any(v > 0 for v in values)\n"
            "canon = sorted(values)\n"
        )
        assert _rules_fired({KERNEL_PATH: snippet}, DET002) == []

    def test_good_building_a_set_is_order_free(self):
        snippet = (
            "def collect(provs: set[str]) -> set[str]:\n"
            "    out = set()\n"
            "    for prov in provs:\n"
            "        out.add(prov)\n"
            "    return out\n"
        )
        assert _rules_fired({KERNEL_PATH: snippet}, DET002) == []

    def test_bad_dict_of_set_subscript(self):
        snippet = (
            "def fold(claims: dict[str, set[str]], key: str) -> list[str]:\n"
            "    return [p for p in claims[key]]\n"
        )
        assert _rules_fired({KERNEL_PATH: snippet}, DET002) == ["DET002"]

    def test_iteration_outside_kernel_modules_is_ignored(self):
        snippet = "seen = {1, 2}\nordered = [x for x in seen]\n"
        assert _rules_fired({ANY_PATH: snippet}, DET002) == []

    def test_bad_builtin_hash(self):
        snippet = "def shard(key):\n    return hash(key) % 4\n"
        assert _rules_fired({ANY_PATH: snippet}, DET002) == ["DET002"]

    def test_good_hash_in_approved_site(self):
        snippet = "def shard_for_key(key):\n    return hash(key) % 4\n"
        assert _rules_fired(
            {"src/repro/mapreduce/executors.py": snippet}, DET002
        ) == []


class TestDET003Payload:
    def test_bad_ndarray_field(self):
        snippet = (
            "import numpy as np\n"
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Stage1Shard:\n"
            "    accuracies: np.ndarray\n"
        )
        assert _rules_fired({PAYLOAD_PATH: snippet}, DET003) == ["DET003"]

    def test_bad_domain_object_field(self):
        snippet = (
            "from dataclasses import dataclass\n"
            "from repro.kb.triples import Triple\n"
            "@dataclass(frozen=True)\n"
            "class ExtractShard:\n"
            "    triples: tuple[Triple, ...]\n"
        )
        assert _rules_fired({PAYLOAD_PATH: snippet}, DET003) == ["DET003"]

    def test_good_ids_and_handle_fields(self):
        snippet = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "from repro.mapreduce.executors import RoundStateHandle\n"
            "@dataclass(frozen=True)\n"
            "class Stage1Shard:\n"
            "    name: str\n"
            "    item_ids: tuple[int, ...]\n"
            "    seed: int\n"
            "    sample_limit: int | None\n"
            "    kernel: Callable\n"
            "    state: RoundStateHandle\n"
        )
        assert _rules_fired({PAYLOAD_PATH: snippet}, DET003) == []

    def test_non_shard_classes_are_ignored(self):
        snippet = (
            "import numpy as np\n"
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class RoundBuffers:\n"
            "    accuracies: np.ndarray\n"
        )
        assert _rules_fired({PAYLOAD_PATH: snippet}, DET003) == []

    def test_outside_payload_modules_is_ignored(self):
        snippet = (
            "import numpy as np\n"
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class LocalShard:\n"
            "    buffer: np.ndarray\n"
        )
        assert _rules_fired({ANY_PATH: snippet}, DET003) == []


class TestDET004Shm:
    def test_bad_unpaired_install_state(self):
        snippet = "def setup(executor, cols):\n    executor.install_state(KEY, cols)\n"
        assert _rules_fired({ANY_PATH: snippet}, DET004) == ["DET004"]

    def test_good_paired_install_uninstall(self):
        snippet = (
            "def setup(executor, cols):\n"
            "    executor.install_state(KEY, cols)\n"
            "def teardown(executor):\n"
            "    executor.uninstall_state(KEY)\n"
        )
        assert _rules_fired({ANY_PATH: snippet}, DET004) == []

    def test_bad_round_state_key_mismatch(self):
        snippet = (
            "def setup(executor, buffers):\n"
            "    executor.install_round_state(ROUND_KEY, buffers)\n"
            "def teardown(executor):\n"
            "    executor.uninstall_round_state(OTHER_KEY)\n"
        )
        assert _rules_fired({ANY_PATH: snippet}, DET004) == ["DET004"]

    def test_bad_shared_memory_without_unlink(self):
        snippet = (
            "from multiprocessing import shared_memory\n"
            "def publish(size):\n"
            "    return shared_memory.SharedMemory(create=True, size=size)\n"
        )
        assert _rules_fired({ANY_PATH: snippet}, DET004) == ["DET004"]

    def test_good_shared_memory_with_unlink(self):
        snippet = (
            "from multiprocessing import shared_memory\n"
            "def publish(size):\n"
            "    segment = shared_memory.SharedMemory(create=True, size=size)\n"
            "    return segment\n"
            "def release(segment):\n"
            "    segment.close()\n"
            "    segment.unlink()\n"
        )
        assert _rules_fired({ANY_PATH: snippet}, DET004) == []

    def test_attaching_existing_segment_is_fine(self):
        snippet = (
            "from multiprocessing import shared_memory\n"
            "def attach(name):\n"
            "    return shared_memory.SharedMemory(name=name)\n"
        )
        assert _rules_fired({ANY_PATH: snippet}, DET004) == []


class TestDET005Clock:
    def test_bad_wall_clock_read(self):
        snippet = "import time\nstamp = time.time()\n"
        assert _rules_fired({KERNEL_PATH: snippet}, DET005) == ["DET005"]

    def test_bad_datetime_now(self):
        snippet = "import datetime\nstamp = datetime.datetime.now()\n"
        assert _rules_fired({KERNEL_PATH: snippet}, DET005) == ["DET005"]

    def test_bad_environ_read(self):
        snippet = "import os\nmode = os.environ['REPRO_MODE']\n"
        assert _rules_fired({KERNEL_PATH: snippet}, DET005) == ["DET005"]

    def test_bad_from_import(self):
        snippet = "from time import perf_counter\n"
        assert _rules_fired({KERNEL_PATH: snippet}, DET005) == ["DET005"]

    def test_good_pure_kernel(self):
        snippet = (
            "import numpy as np\n"
            "def kernel(values: np.ndarray) -> np.ndarray:\n"
            "    return np.cumsum(values)\n"
        )
        assert _rules_fired({KERNEL_PATH: snippet}, DET005) == []

    def test_timing_outside_kernel_modules_is_fine(self):
        # Benchmarks and the CLI layer time things; that is their job.
        snippet = "import time\nstart = time.perf_counter()\n"
        assert _rules_fired({ANY_PATH: snippet}, DET005) == []


BASE_OK = (
    "PARITY_BITWISE = 'bitwise'\n"
    "PARITY_TOLERANCE = 'tolerance'\n"
    "BACKENDS = ('serial', 'parallel')\n"
    "_BACKEND_PARITY = {'serial': PARITY_BITWISE, 'parallel': PARITY_BITWISE}\n"
    "def parity_of(backend_used):\n"
    "    return _BACKEND_PARITY[backend_used.split(' ')[0]]\n"
    "def sampling_contract_of(config):\n"
    "    return 'canonical-order'\n"
)


class TestDET006Contracts:
    BASE = "src/repro/fusion/base.py"
    ENDTOEND = "src/repro/endtoend.py"

    def test_good_declared_backends(self):
        files = {
            self.BASE: BASE_OK,
            self.ENDTOEND: "PIPELINE_BACKENDS = ('serial', 'parallel')\n",
        }
        assert _rules_fired(files, DET006) == []

    def test_bad_backend_without_parity_entry(self):
        files = {
            self.BASE: BASE_OK.replace(
                "BACKENDS = ('serial', 'parallel')",
                "BACKENDS = ('serial', 'parallel', 'quantum')",
            )
        }
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_bad_stale_parity_key(self):
        files = {
            self.BASE: BASE_OK.replace(
                "BACKENDS = ('serial', 'parallel')\n",
                "BACKENDS = ('serial',)\n",
            )
        }
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_bad_missing_resolver(self):
        files = {
            self.BASE: BASE_OK.replace(
                "def sampling_contract_of(config):\n"
                "    return 'canonical-order'\n",
                "",
            )
        }
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_bad_pipeline_backend_undeclared(self):
        files = {
            self.BASE: BASE_OK,
            self.ENDTOEND: "PIPELINE_BACKENDS = ('serial', 'hybrid')\n",
        }
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_good_pipeline_backend_resolved_by_mapping(self):
        files = {
            self.BASE: BASE_OK,
            self.ENDTOEND: (
                "PIPELINE_BACKENDS = ('serial', 'batched')\n"
                "_FUSION_BACKEND = {'serial': 'serial', 'batched': 'serial'}\n"
            ),
        }
        assert _rules_fired(files, DET006) == []

    def test_bad_mapping_resolves_to_undeclared_backend(self):
        files = {
            self.BASE: BASE_OK,
            self.ENDTOEND: (
                "PIPELINE_BACKENDS = ('serial', 'batched')\n"
                "_FUSION_BACKEND = {'serial': 'serial', 'batched': 'quantum'}\n"
            ),
        }
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_bad_stale_mapping_key(self):
        files = {
            self.BASE: BASE_OK,
            self.ENDTOEND: (
                "PIPELINE_BACKENDS = ('serial',)\n"
                "_FUSION_BACKEND = {'serial': 'serial', 'batched': 'serial'}\n"
            ),
        }
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_bad_non_literal_mapping(self):
        files = {
            self.BASE: BASE_OK,
            self.ENDTOEND: (
                "PIPELINE_BACKENDS = ('serial',)\n"
                "_FUSION_BACKEND = {'serial': SERIAL}\n"
            ),
        }
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_bad_non_literal_backends(self):
        files = {self.BASE: BASE_OK.replace(
            "BACKENDS = ('serial', 'parallel')",
            "BACKENDS = tuple(_discover())",
        )}
        assert _rules_fired(files, DET006) == ["DET006"]

    def test_absent_base_module_is_silent(self):
        # Fixture sets without base.py have no contract surface to check.
        assert _rules_fired({ANY_PATH: "x = 1\n"}, DET006) == []
