"""The lint engine itself: pragmas, baseline, meta-findings, rendering.

Rules are stubbed where possible so these tests pin the *engine*
semantics — suppression lifecycles, stale detection, output shapes —
independent of what the DET rules flag.
"""

from __future__ import annotations

import json

from repro.analysis.lint import (
    Finding,
    Rule,
    lint_sources,
    parse_source,
    render_human,
    render_json,
)

#: A rule that flags every call to a function named ``bad()`` — enough
#: surface to drive the pragma/baseline machinery.
import ast


def _flag_bad(files):
    for path, source in files.items():
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "bad"
            ):
                yield Finding(path, node.lineno, "DET001", "call to bad()")


STUB_RULE = Rule(id="DET001", title="stub", check=_flag_bad)


class TestFindings:
    def test_clean_file_is_ok(self):
        result = lint_sources({"src/repro/m.py": "x = 1\n"}, rules=[STUB_RULE])
        assert result.ok
        assert result.n_files == 1
        assert result.rules == ("DET001",)

    def test_finding_reported_with_location(self):
        result = lint_sources(
            {"src/repro/m.py": "x = 1\nbad()\n"}, rules=[STUB_RULE]
        )
        assert not result.ok
        (finding,) = result.findings
        assert finding.path == "src/repro/m.py"
        assert finding.line == 2
        assert finding.rule == "DET001"
        assert finding.format() == "src/repro/m.py:2: DET001 call to bad()"

    def test_syntax_error_is_lnt000_not_a_crash(self):
        result = lint_sources({"src/repro/m.py": "def f(:\n"}, rules=[STUB_RULE])
        assert not result.ok
        assert [f.rule for f in result.findings] == ["LNT000"]


class TestPragmas:
    def test_pragma_with_reason_suppresses(self):
        result = lint_sources(
            {"src/repro/m.py": "bad()  # det: ignore[DET001] -- fixture\n"},
            rules=[STUB_RULE],
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["DET001"]

    def test_pragma_without_reason_is_lnt001_and_does_not_suppress(self):
        result = lint_sources(
            {"src/repro/m.py": "bad()  # det: ignore[DET001]\n"},
            rules=[STUB_RULE],
        )
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["DET001", "LNT001"]

    def test_pragma_on_wrong_line_does_not_suppress(self):
        result = lint_sources(
            {
                "src/repro/m.py": (
                    "x = 1  # det: ignore[DET001] -- wrong line\nbad()\n"
                )
            },
            rules=[STUB_RULE],
        )
        rules = sorted(f.rule for f in result.findings)
        # The finding survives AND the misplaced pragma is stale.
        assert rules == ["DET001", "LNT002"]

    def test_stale_pragma_is_lnt002(self):
        result = lint_sources(
            {"src/repro/m.py": "x = 1  # det: ignore[DET001] -- obsolete\n"},
            rules=[STUB_RULE],
        )
        assert [f.rule for f in result.findings] == ["LNT002"]

    def test_unknown_rule_id_is_lnt001(self):
        result = lint_sources(
            {"src/repro/m.py": "x = 1  # det: ignore[DET999x] -- typo\n"},
            rules=[STUB_RULE],
        )
        assert [f.rule for f in result.findings] == ["LNT001"]

    def test_pragma_in_string_literal_is_inert(self):
        text = 's = "# det: ignore[DET001] -- not a comment"\nbad()\n'
        result = lint_sources({"src/repro/m.py": text}, rules=[STUB_RULE])
        assert [f.rule for f in result.findings] == ["DET001"]

    def test_multi_rule_pragma(self):
        source, errors = parse_source(
            "m.py", "x = 1  # det: ignore[DET001, DET002] -- both\n"
        )
        assert errors == []
        (pragma,) = source.pragmas
        assert pragma.rules == ("DET001", "DET002")
        assert pragma.reason == "both"


class TestBaseline:
    def test_baseline_suppresses_matching_finding(self):
        result = lint_sources(
            {"src/repro/m.py": "bad()\n"},
            rules=[STUB_RULE],
            baseline=[("DET001", "src/repro/m.py", "call to bad()")],
        )
        assert result.ok
        assert len(result.suppressed) == 1

    def test_baseline_is_line_insensitive(self):
        result = lint_sources(
            {"src/repro/m.py": "x = 1\ny = 2\nbad()\n"},
            rules=[STUB_RULE],
            baseline=[("DET001", "src/repro/m.py", "call to bad()")],
        )
        assert result.ok

    def test_stale_baseline_entry_is_lnt003(self):
        result = lint_sources(
            {"src/repro/m.py": "x = 1\n"},
            rules=[STUB_RULE],
            baseline=[("DET001", "src/repro/m.py", "call to bad()")],
            baseline_path="tools/contracts_lint_baseline.json",
        )
        assert [f.rule for f in result.findings] == ["LNT003"]
        (finding,) = result.findings
        assert finding.path == "tools/contracts_lint_baseline.json"


class TestRendering:
    def test_render_human_ok(self):
        result = lint_sources({"src/repro/m.py": "x = 1\n"}, rules=[STUB_RULE])
        assert "OK" in render_human(result)

    def test_render_human_lists_findings(self):
        result = lint_sources({"src/repro/m.py": "bad()\n"}, rules=[STUB_RULE])
        text = render_human(result)
        assert "1 problem(s)" in text
        assert "src/repro/m.py:1: DET001" in text

    def test_render_json_shape(self):
        result = lint_sources(
            {"src/repro/m.py": "bad()  # det: ignore[DET001] -- fixture\n"},
            rules=[STUB_RULE],
        )
        data = json.loads(render_json(result))
        assert data["ok"] is True
        assert data["n_files"] == 1
        assert data["findings"] == []
        assert data["suppressed"][0] == {
            "rule": "DET001",
            "path": "src/repro/m.py",
            "line": 1,
            "message": "call to bad()",
        }
