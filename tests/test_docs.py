"""The docs lint as a tier-1 test: README/ARCHITECTURE must not rot.

Delegates to ``tools/docs_lint.py`` (the same checks CI runs as a
standalone step) so a dead link, a documented-but-nonexistent
``repro-kf`` subcommand, or an undocumented fusion backend fails the
ordinary test run, not just CI.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_docs_lint():
    spec = importlib.util.spec_from_file_location(
        "docs_lint", REPO_ROOT / "tools" / "docs_lint.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("docs_lint", module)
    spec.loader.exec_module(module)
    return module


class TestDocsLint:
    def test_links_resolve(self):
        docs_lint = _load_docs_lint()
        assert docs_lint.check_links() == []

    def test_cli_docs_in_sync(self):
        docs_lint = _load_docs_lint()
        assert docs_lint.check_cli_sync() == []

    def test_bench_entrypoints_in_sync(self):
        docs_lint = _load_docs_lint()
        assert docs_lint.check_bench_sync() == []

    def test_tool_entrypoints_in_sync(self):
        docs_lint = _load_docs_lint()
        assert docs_lint.check_tool_sync() == []

    def test_bench_sync_requires_the_perf_trajectory_surface(self, tmp_path):
        """A README that stops documenting the comparator or the
        --compare gate is a lint failure, not silent rot."""
        docs_lint = _load_docs_lint()
        (tmp_path / "benchmarks").mkdir()
        for script in ("run.py", "compare.py"):
            (tmp_path / "benchmarks" / script).write_text("")
        readme = tmp_path / "README.md"

        readme.write_text("Use benchmarks/run.py only.\n")
        errors = docs_lint.check_bench_sync(tmp_path)
        assert any("benchmarks/compare.py" in e for e in errors)
        assert any("--compare" in e for e in errors)

        readme.write_text(
            "Run benchmarks/run.py --compare, gate via benchmarks/compare.py.\n"
        )
        assert docs_lint.check_bench_sync(tmp_path) == []

    def test_front_door_exists(self):
        """The acceptance criterion verbatim: the front door files exist
        and ROADMAP links them."""
        assert (REPO_ROOT / "README.md").exists()
        assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()
        roadmap = (REPO_ROOT / "ROADMAP.md").read_text()
        assert "README.md" in roadmap
        assert "ARCHITECTURE.md" in roadmap

    def test_scale_presets_in_sync(self):
        docs_lint = _load_docs_lint()
        assert docs_lint.check_scale_sync() == []

    def test_scale_sync_catches_a_missing_tier(self, tmp_path):
        """A new --scale preset without a README table row is lint
        failure, not silent rot (the table carries the RSS/wall-clock
        expectations)."""
        docs_lint = _load_docs_lint()
        (tmp_path / "README.md").write_text(
            "| scale |\n|---|\n| `tiny` |\n| `small` |\n| `medium` |\n"
        )
        errors = docs_lint.check_scale_sync(tmp_path)
        assert errors == [
            "README.md: scale preset 'web' has no row in the "
            "scale-preset table"
        ]

    def test_scale_sync_ignores_prose_mentions(self, tmp_path):
        docs_lint = _load_docs_lint()
        (tmp_path / "README.md").write_text(
            "We support `tiny`, `small`, `medium` and `web` scales.\n"
        )
        errors = docs_lint.check_scale_sync(tmp_path)
        assert len(errors) == 4  # prose is not the table

    def test_scaling_doc_exists_and_is_linked(self):
        """PR acceptance verbatim: docs/SCALING.md exists and both
        front-door docs link it."""
        assert (REPO_ROOT / "docs" / "SCALING.md").exists()
        assert "docs/SCALING.md" in (REPO_ROOT / "README.md").read_text()
        assert "SCALING.md" in (
            REPO_ROOT / "docs" / "ARCHITECTURE.md"
        ).read_text()
