"""Unit tests for JSONL serialisation."""

import pytest

from repro.io import (
    iter_records,
    load_kb,
    load_probabilities,
    load_records,
    save_kb,
    save_probabilities,
    save_records,
)
from repro.kb.store import KnowledgeBase
from repro.kb.triples import Triple
from repro.kb.values import DateValue, EntityRef, NumberValue, StringValue


class TestRecords:
    def test_roundtrip_scenario_records(self, tiny_scenario, tmp_path):
        path = tmp_path / "records.jsonl"
        written = save_records(tiny_scenario.records, path)
        assert written == len(tiny_scenario.records)
        loaded = load_records(path)
        assert loaded == tiny_scenario.records

    def test_debug_channel_survives(self, tiny_scenario, tmp_path):
        path = tmp_path / "records.jsonl"
        save_records(tiny_scenario.records, path)
        loaded = load_records(path)
        for original, restored in zip(tiny_scenario.records, loaded):
            assert restored.debug == original.debug
        assert any(r.debug is not None and r.debug.error_kind for r in loaded)

    def test_stripped_records_roundtrip(self, tiny_scenario, tmp_path):
        path = tmp_path / "records.jsonl"
        stripped = [r.without_debug() for r in tiny_scenario.records[:20]]
        save_records(stripped, path)
        assert load_records(path) == stripped

    def test_iter_records_streams(self, tiny_scenario, tmp_path):
        path = tmp_path / "records.jsonl"
        save_records(tiny_scenario.records[:5], path)
        iterator = iter_records(path)
        first = next(iterator)
        assert first == tiny_scenario.records[0]
        assert len(list(iterator)) == 4


class TestKnowledgeBase:
    def test_roundtrip_all_value_kinds(self, tmp_path):
        kb = KnowledgeBase()
        kb.add(Triple("/m/1", "p/t/a", EntityRef("/m/2")))
        kb.add(Triple("/m/1", "p/t/b", StringValue("hello world")))
        kb.add(Triple("/m/1", "p/t/c", NumberValue(42.5)))
        kb.add(Triple("/m/1", "p/t/d", DateValue("1999-12-31")))
        path = tmp_path / "kb.txt"
        assert save_kb(kb, path) == 4
        loaded = load_kb(path)
        assert set(loaded) == set(kb)

    def test_roundtrip_freebase_snapshot(self, tiny_scenario, tmp_path):
        path = tmp_path / "freebase.txt"
        save_kb(tiny_scenario.freebase, path)
        loaded = load_kb(path, name="freebase")
        assert set(loaded) == set(tiny_scenario.freebase)
        assert loaded.stats() == tiny_scenario.freebase.stats()

    def test_output_is_sorted(self, tmp_path):
        kb = KnowledgeBase()
        kb.add(Triple("/m/2", "p", StringValue("b")))
        kb.add(Triple("/m/1", "p", StringValue("a")))
        path = tmp_path / "kb.txt"
        save_kb(kb, path)
        lines = path.read_text().splitlines()
        assert lines == sorted(lines)


class TestProbabilities:
    def test_roundtrip(self, tmp_path):
        probabilities = {
            Triple("/m/1", "p", StringValue("a")): 0.25,
            Triple("/m/1", "p", StringValue("b")): 0.75,
        }
        path = tmp_path / "probs.jsonl"
        assert save_probabilities(probabilities, path) == 2
        assert load_probabilities(path) == probabilities

    def test_roundtrip_fusion_output(self, tiny_scenario, tmp_path):
        from repro.fusion import vote

        result = vote().fuse(tiny_scenario.fusion_input())
        path = tmp_path / "probs.jsonl"
        save_probabilities(result.probabilities, path)
        loaded = load_probabilities(path)
        assert loaded == pytest.approx(result.probabilities)
