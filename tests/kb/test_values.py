"""Unit tests for typed object values."""

import pytest

from repro.kb.values import (
    DateValue,
    EntityRef,
    NumberValue,
    StringValue,
    parse_value,
)


class TestCanonicalForms:
    def test_entity_canonical(self):
        assert EntityRef("/m/07r1h").canonical() == "entity:/m/07r1h"

    def test_string_canonical(self):
        assert StringValue("film actor").canonical() == "string:film actor"

    def test_integer_number_has_no_decimal_point(self):
        assert NumberValue(1986.0).canonical() == "number:1986"

    def test_fractional_number_keeps_decimals(self):
        assert NumberValue(1.75).canonical() == "number:1.75"

    def test_date_canonical(self):
        assert DateValue("1962-07-03").canonical() == "date:1962-07-03"


class TestParseValue:
    @pytest.mark.parametrize(
        "value",
        [
            EntityRef("/m/0001"),
            StringValue("hello world"),
            NumberValue(42.0),
            NumberValue(2.5),
            DateValue("2001-01-31"),
        ],
    )
    def test_roundtrip(self, value):
        assert parse_value(value.canonical()) == value

    def test_string_with_colon_survives_roundtrip(self):
        value = StringValue("a:b:c")
        assert parse_value(value.canonical()) == value

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            parse_value("blob:xyz")

    def test_rejects_missing_separator(self):
        with pytest.raises(ValueError):
            parse_value("not-canonical")


class TestValueSemantics:
    def test_values_are_hashable_and_comparable(self):
        assert len({EntityRef("/m/1"), EntityRef("/m/1"), EntityRef("/m/2")}) == 2

    def test_same_kind_ordering(self):
        assert StringValue("a") < StringValue("b")

    def test_distinct_kinds_never_equal(self):
        assert StringValue("1") != NumberValue(1.0)

    def test_values_are_frozen(self):
        with pytest.raises(AttributeError):
            EntityRef("/m/1").entity_id = "/m/2"
