"""Unit tests for LCWA gold-standard labelling."""

import pytest

from repro.kb.lcwa import Label, LCWALabeler
from repro.kb.store import KnowledgeBase
from repro.kb.triples import Triple
from repro.kb.values import DateValue, StringValue


@pytest.fixture
def labeler():
    kb = KnowledgeBase()
    kb.add(Triple("/m/1", "birth_date", DateValue("1962-07-03")))
    kb.add(Triple("/m/1", "profession", StringValue("actor")))
    return LCWALabeler(kb)


class TestLabel:
    def test_known_triple_is_true(self, labeler):
        assert (
            labeler.label(Triple("/m/1", "birth_date", DateValue("1962-07-03")))
            is Label.TRUE
        )

    def test_known_item_wrong_value_is_false(self, labeler):
        assert (
            labeler.label(Triple("/m/1", "birth_date", DateValue("1999-01-01")))
            is Label.FALSE
        )

    def test_unknown_item_abstains(self, labeler):
        assert (
            labeler.label(Triple("/m/2", "birth_date", DateValue("1999-01-01")))
            is Label.UNKNOWN
        )
        assert (
            labeler.label(Triple("/m/1", "spouse", StringValue("x")))
            is Label.UNKNOWN
        )

    def test_extra_true_value_labelled_false(self, labeler):
        """The documented LCWA failure mode: a second true profession is
        labelled false because Freebase 'locally closes' the item."""
        assert (
            labeler.label(Triple("/m/1", "profession", StringValue("producer")))
            is Label.FALSE
        )


class TestLabelMany:
    def test_label_many_excludes_unknown(self, labeler):
        triples = [
            Triple("/m/1", "birth_date", DateValue("1962-07-03")),
            Triple("/m/1", "birth_date", DateValue("1999-01-01")),
            Triple("/m/9", "birth_date", DateValue("1999-01-01")),
        ]
        labels = labeler.label_many(triples)
        assert len(labels) == 2
        assert labels[triples[0]] is True
        assert labels[triples[1]] is False

    def test_coverage(self, labeler):
        triples = [
            Triple("/m/1", "birth_date", DateValue("1962-07-03")),
            Triple("/m/9", "birth_date", DateValue("1999-01-01")),
        ]
        assert labeler.coverage(triples) == pytest.approx(0.5)

    def test_coverage_empty(self, labeler):
        assert labeler.coverage([]) == 0.0
