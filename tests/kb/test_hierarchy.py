"""Unit tests for the value containment hierarchy."""

import pytest

from repro.errors import SchemaError
from repro.kb.hierarchy import ValueHierarchy


@pytest.fixture
def chain():
    h = ValueHierarchy()
    h.add_edge("sf", "ca")
    h.add_edge("ca", "usa")
    h.add_edge("usa", "north_america")
    h.add_edge("nyc", "usa")
    return h


class TestEdges:
    def test_self_edge_rejected(self):
        with pytest.raises(SchemaError):
            ValueHierarchy().add_edge("a", "a")

    def test_second_parent_rejected(self, chain):
        with pytest.raises(SchemaError):
            chain.add_edge("sf", "usa")

    def test_cycle_rejected(self, chain):
        with pytest.raises(SchemaError):
            chain.add_edge("north_america", "sf")

    def test_parent_and_children(self, chain):
        assert chain.parent("sf") == "ca"
        assert chain.parent("north_america") is None
        assert set(chain.children("usa")) == {"ca", "nyc"}


class TestQueries:
    def test_ancestors(self, chain):
        assert chain.ancestors("sf") == ["ca", "usa", "north_america"]
        assert chain.ancestors("north_america") == []

    def test_chain(self, chain):
        assert chain.chain("sf") == ["sf", "ca", "usa", "north_america"]

    def test_is_ancestor(self, chain):
        assert chain.is_ancestor("usa", "sf")
        assert not chain.is_ancestor("sf", "usa")
        assert not chain.is_ancestor("nyc", "sf")

    def test_related_covers_both_directions_and_identity(self, chain):
        assert chain.related("usa", "sf")
        assert chain.related("sf", "usa")
        assert chain.related("sf", "sf")
        assert not chain.related("sf", "nyc")

    def test_depth(self, chain):
        assert chain.depth("north_america") == 0
        assert chain.depth("sf") == 3

    def test_roots(self, chain):
        assert chain.roots() == ["north_america"]

    def test_members_and_contains(self, chain):
        assert "sf" in chain
        assert "mars" not in chain
        assert set(chain.members()) == {"sf", "ca", "usa", "north_america", "nyc"}
