"""Unit tests for entities and the registry."""

import pytest

from repro.errors import SchemaError
from repro.kb.entities import Entity, EntityRegistry


@pytest.fixture
def registry():
    reg = EntityRegistry()
    reg.add(
        Entity(
            entity_id="/m/1",
            type_ids=("people/person",),
            name="Tom Cruise",
            aliases=("T. Cruise",),
        )
    )
    reg.add(
        Entity(
            entity_id="/m/2",
            type_ids=("book/book",),
            name="Les Miserables",
        )
    )
    reg.add(
        Entity(
            entity_id="/m/3",
            type_ids=("theater/show",),
            name="Les Miserables (show)",
            aliases=("Les Miserables",),
        )
    )
    return reg


class TestEntity:
    def test_surface_forms_include_name_and_aliases(self):
        entity = Entity("/m/9", ("a/b",), "Alpha", aliases=("Al",))
        assert entity.surface_forms() == ("Alpha", "Al")

    def test_primary_type(self):
        entity = Entity("/m/9", ("a/b", "c/d"), "Alpha")
        assert entity.primary_type == "a/b"


class TestRegistry:
    def test_len_and_contains(self, registry):
        assert len(registry) == 3
        assert "/m/1" in registry
        assert "/m/99" not in registry

    def test_duplicate_rejected(self, registry):
        with pytest.raises(SchemaError):
            registry.add(Entity("/m/1", ("a/b",), "Clone"))

    def test_entity_without_types_rejected(self):
        with pytest.raises(SchemaError):
            EntityRegistry().add(Entity("/m/1", (), "Typeless"))

    def test_get_unknown_raises(self, registry):
        with pytest.raises(SchemaError):
            registry.get("/m/404")

    def test_of_type(self, registry):
        people = registry.of_type("people/person")
        assert [e.entity_id for e in people] == ["/m/1"]
        assert registry.of_type("no/such") == []

    def test_candidates_for_unambiguous_name(self, registry):
        assert [e.entity_id for e in registry.candidates_for("Tom Cruise")] == ["/m/1"]

    def test_candidates_for_shared_surface(self, registry):
        ids = {e.entity_id for e in registry.candidates_for("Les Miserables")}
        assert ids == {"/m/2", "/m/3"}

    def test_candidates_for_alias(self, registry):
        assert [e.entity_id for e in registry.candidates_for("T. Cruise")] == ["/m/1"]

    def test_ambiguous_surfaces(self, registry):
        assert registry.ambiguous_surfaces() == ["Les Miserables"]

    def test_iteration_order_is_insertion_order(self, registry):
        assert [e.entity_id for e in registry] == ["/m/1", "/m/2", "/m/3"]
