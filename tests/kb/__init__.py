"""Test package: kb (package __init__ so duplicate basenames import distinctly)."""
