"""Unit tests for the type/predicate schema."""

import pytest

from repro.errors import SchemaError
from repro.kb.schema import EntityType, Predicate, Schema, ValueKind


def make_schema() -> Schema:
    schema = Schema()
    schema.add_type(EntityType("people/person"))
    schema.add_type(EntityType("book/book"))
    schema.add_predicate(
        Predicate(
            pid="people/person/birth_date",
            type_id="people/person",
            value_kind=ValueKind.DATE,
        )
    )
    schema.add_predicate(
        Predicate(
            pid="book/book/author",
            type_id="book/book",
            value_kind=ValueKind.ENTITY,
            functional=False,
            max_truths=2,
            object_type_id="people/person",
            confusable_with="book/book/editor",
        )
    )
    schema.add_predicate(
        Predicate(
            pid="book/book/editor",
            type_id="book/book",
            value_kind=ValueKind.ENTITY,
            functional=False,
            max_truths=2,
            object_type_id="people/person",
            confusable_with="book/book/author",
        )
    )
    return schema


class TestEntityType:
    def test_domain_and_name(self):
        t = EntityType("people/person")
        assert t.domain == "people"
        assert t.name == "person"

    @pytest.mark.parametrize("bad", ["person", "a/b/c", ""])
    def test_rejects_malformed_ids(self, bad):
        with pytest.raises(SchemaError):
            EntityType(bad)


class TestPredicate:
    def test_functional_needs_single_truth(self):
        with pytest.raises(SchemaError):
            Predicate(
                pid="t/t/p", type_id="t/t", value_kind=ValueKind.STRING, max_truths=3
            )

    def test_non_functional_needs_multiple_truths(self):
        with pytest.raises(SchemaError):
            Predicate(
                pid="t/t/p",
                type_id="t/t",
                value_kind=ValueKind.STRING,
                functional=False,
                max_truths=1,
            )

    def test_entity_valued_needs_object_type(self):
        with pytest.raises(SchemaError):
            Predicate(pid="t/t/p", type_id="t/t", value_kind=ValueKind.ENTITY)

    def test_name_is_last_segment(self):
        p = Predicate(
            pid="people/person/birth_date",
            type_id="people/person",
            value_kind=ValueKind.DATE,
        )
        assert p.name == "birth_date"


class TestSchema:
    def test_duplicate_type_rejected(self):
        schema = Schema()
        schema.add_type(EntityType("a/b"))
        with pytest.raises(SchemaError):
            schema.add_type(EntityType("a/b"))

    def test_duplicate_predicate_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.add_predicate(
                Predicate(
                    pid="people/person/birth_date",
                    type_id="people/person",
                    value_kind=ValueKind.DATE,
                )
            )

    def test_predicate_requires_known_type(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.add_predicate(
                Predicate(pid="x/y/z", type_id="x/y", value_kind=ValueKind.STRING)
            )

    def test_lookup_unknown_predicate(self):
        with pytest.raises(SchemaError):
            make_schema().predicate("nope/nope/nope")

    def test_predicates_of_type_sorted(self):
        schema = make_schema()
        pids = [p.pid for p in schema.predicates_of_type("book/book")]
        assert pids == ["book/book/author", "book/book/editor"]

    def test_functional_share(self):
        assert make_schema().functional_share() == pytest.approx(1 / 3)

    def test_functional_share_empty_schema_raises(self):
        with pytest.raises(SchemaError):
            Schema().functional_share()

    def test_validate_passes_on_consistent_schema(self):
        make_schema().validate()

    def test_validate_rejects_dangling_confusable(self):
        schema = Schema()
        schema.add_type(EntityType("a/b"))
        schema.add_predicate(
            Predicate(
                pid="a/b/p",
                type_id="a/b",
                value_kind=ValueKind.STRING,
                confusable_with="a/b/ghost",
            )
        )
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_rejects_cross_type_confusable(self):
        schema = make_schema()
        schema.add_predicate(
            Predicate(
                pid="people/person/knows",
                type_id="people/person",
                value_kind=ValueKind.ENTITY,
                functional=False,
                max_truths=5,
                object_type_id="people/person",
                confusable_with="book/book/author",
            )
        )
        with pytest.raises(SchemaError):
            schema.validate()
