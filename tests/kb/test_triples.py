"""Unit tests for triples and data items."""

import pytest

from repro.kb.triples import DataItem, Triple
from repro.kb.values import DateValue, EntityRef, StringValue


@pytest.fixture
def triple():
    return Triple("/m/07r1h", "people/person/birth_date", DateValue("1962-07-03"))


class TestTriple:
    def test_data_item(self, triple):
        assert triple.data_item == DataItem("/m/07r1h", "people/person/birth_date")

    def test_canonical_roundtrip(self, triple):
        assert Triple.from_canonical(triple.canonical()) == triple

    def test_from_canonical_rejects_malformed(self):
        with pytest.raises(ValueError):
            Triple.from_canonical("only|two")

    def test_hashable(self, triple):
        clone = Triple.from_canonical(triple.canonical())
        assert len({triple, clone}) == 1

    def test_ordering_handles_mixed_value_kinds(self):
        a = Triple("/m/1", "p", EntityRef("/m/2"))
        b = Triple("/m/1", "p", StringValue("raw"))
        assert sorted([b, a]) == sorted([a, b])

    def test_ordering_is_canonical_order(self):
        a = Triple("/m/1", "p", StringValue("a"))
        b = Triple("/m/1", "p", StringValue("b"))
        assert a < b
        assert b > a
        assert a <= a and a >= a

    def test_comparison_with_non_triple_raises(self, triple):
        with pytest.raises(TypeError):
            _ = triple < 42


class TestDataItem:
    def test_canonical(self):
        assert DataItem("/m/1", "p").canonical() == "/m/1|p"

    def test_ordering(self):
        assert DataItem("/m/1", "a") < DataItem("/m/1", "b") < DataItem("/m/2", "a")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DataItem("/m/1", "p").subject = "/m/2"
