"""Unit tests for the indexed triple store."""

import pytest

from repro.kb.store import KnowledgeBase
from repro.kb.triples import DataItem, Triple
from repro.kb.values import DateValue, EntityRef, StringValue


@pytest.fixture
def kb():
    store = KnowledgeBase()
    store.add(Triple("/m/1", "p/t/birth_date", DateValue("1962-07-03")))
    store.add(Triple("/m/1", "p/t/profession", StringValue("actor")))
    store.add(Triple("/m/1", "p/t/profession", StringValue("producer")))
    store.add(Triple("/m/2", "p/t/birth_date", DateValue("1970-01-01")))
    return store


class TestAdd:
    def test_add_returns_true_for_new(self):
        assert KnowledgeBase().add(Triple("/m/1", "p", StringValue("x")))

    def test_add_duplicate_is_noop(self, kb):
        triple = Triple("/m/1", "p/t/birth_date", DateValue("1962-07-03"))
        assert kb.add(triple) is False
        assert len(kb) == 4

    def test_add_all_counts_new(self, kb):
        added = kb.add_all(
            [
                Triple("/m/1", "p/t/birth_date", DateValue("1962-07-03")),  # dup
                Triple("/m/3", "p/t/birth_date", DateValue("1980-02-02")),
            ]
        )
        assert added == 1


class TestLookup:
    def test_contains(self, kb):
        assert Triple("/m/1", "p/t/profession", StringValue("actor")) in kb
        assert Triple("/m/1", "p/t/profession", StringValue("pilot")) not in kb

    def test_has_item(self, kb):
        assert kb.has_item(DataItem("/m/1", "p/t/profession"))
        assert not kb.has_item(DataItem("/m/3", "p/t/profession"))

    def test_values_for(self, kb):
        values = set(kb.values_for(DataItem("/m/1", "p/t/profession")))
        assert values == {StringValue("actor"), StringValue("producer")}

    def test_triples_of_subject(self, kb):
        assert len(kb.triples_of_subject("/m/1")) == 3

    def test_triples_of_predicate(self, kb):
        assert len(kb.triples_of_predicate("p/t/birth_date")) == 2

    def test_data_items(self, kb):
        assert len(kb.data_items()) == 3


class TestStats:
    def test_stats_counts(self, kb):
        stats = kb.stats()
        assert stats == {
            "triples": 4,
            "subjects": 2,
            "predicates": 2,
            "objects": 4,
            "data_items": 3,
        }

    def test_item_value_counts(self, kb):
        counts = kb.item_value_counts()
        assert counts[DataItem("/m/1", "p/t/profession")] == 2

    def test_objects_deduplicated_across_subjects(self):
        store = KnowledgeBase()
        store.add(Triple("/m/1", "p", EntityRef("/m/9")))
        store.add(Triple("/m/2", "p", EntityRef("/m/9")))
        assert store.stats()["objects"] == 1
