"""Shared fixtures.

The tiny scenario is session-scoped: it is deterministic, so sharing it
across tests is safe, and it keeps the suite fast (generation is the
expensive part).  Tests that mutate state build their own.
"""

from __future__ import annotations

import pytest

from repro.datasets import ScenarioConfig, build_scenario, tiny_config
from repro.world.config import WebConfig, WorldConfig
from repro.world.worldgen import generate_world


@pytest.fixture(scope="session")
def tiny_scenario():
    """The default deterministic test scenario."""
    return build_scenario(tiny_config(seed=7))


@pytest.fixture(scope="session")
def tiny_scenario_alt_seed():
    """Same configuration, different seed (for determinism contrasts)."""
    return build_scenario(tiny_config(seed=8))


@pytest.fixture(scope="session")
def small_world():
    """A standalone world (no web corpus) for world-level tests."""
    return generate_world(WorldConfig(n_types=8, n_entities=200), seed=3)


@pytest.fixture(scope="session")
def micro_scenario():
    """An even smaller scenario for the expensive sweeps."""
    return build_scenario(
        ScenarioConfig(
            seed=5,
            world=WorldConfig(n_types=5, n_entities=80),
            web=WebConfig(n_sites=8, n_pages=50),
        )
    )
