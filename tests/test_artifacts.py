"""Tests for the content-addressed scenario artifact cache.

The correctness contract of :mod:`repro.artifacts` is *bit identity*: a
cache hit must reconstruct the world, Freebase snapshot and corpus so
exactly that everything downstream (records, gold labels, fused
probabilities) equals a fresh build.  Invalidation is by construction —
the key covers seed, configs, artifact format and a code-version hash —
and a loader that finds anything off (key, sizes, checksums) must miss,
never guess.
"""

import json

import pytest

from repro import artifacts
from repro.datasets import ScenarioConfig
from repro.world.config import WebConfig, WorldConfig

CONFIG = ScenarioConfig(
    seed=11,
    world=WorldConfig(n_types=5, n_entities=60),
    web=WebConfig(n_sites=6, n_pages=30),
)


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A populated cache plus the cold (freshly generated) bundle."""
    cache_dir = tmp_path_factory.mktemp("artifact-cache")
    world, freebase, corpus, status = artifacts.setup_worldgen(
        CONFIG.seed, CONFIG.world, CONFIG.web, cache_dir
    )
    assert status == "miss"
    return cache_dir, world, freebase, corpus


class TestSetupWorldgen:
    def test_off_without_cache_dir(self):
        *_bundle, status = artifacts.setup_worldgen(
            CONFIG.seed, CONFIG.world, CONFIG.web, None
        )
        assert status == "off"

    def test_hit_is_bit_identical(self, warm_cache):
        cache_dir, world, freebase, corpus = warm_cache
        world2, freebase2, corpus2, status = artifacts.setup_worldgen(
            CONFIG.seed, CONFIG.world, CONFIG.web, cache_dir
        )
        assert status == "hit"
        assert world2.truths == world.truths
        assert world2.popularity == world.popularity
        assert freebase2.stats() == freebase.stats()
        assert list(freebase2.data_items()) == list(freebase.data_items())
        assert corpus2.sites == corpus.sites
        assert list(corpus2.pages) == list(corpus.pages)

    def test_lazy_pages_support_sequence_protocol(self, warm_cache):
        cache_dir, _world, _freebase, corpus = warm_cache
        _w, _f, corpus2, status = artifacts.setup_worldgen(
            CONFIG.seed, CONFIG.world, CONFIG.web, cache_dir
        )
        assert status == "hit"
        assert isinstance(corpus2.pages, artifacts.LazyPageList)
        assert len(corpus2.pages) == len(corpus.pages)
        assert corpus2.pages[0] == corpus.pages[0]
        assert corpus2.pages[-1] == corpus.pages[-1]
        assert corpus2.pages[1:3] == list(corpus.pages)[1:3]

    def test_different_seed_misses(self, warm_cache):
        cache_dir, *_ = warm_cache
        *_bundle, status = artifacts.setup_worldgen(
            CONFIG.seed + 1, CONFIG.world, CONFIG.web, cache_dir
        )
        assert status == "miss"

    def test_different_config_misses(self, warm_cache):
        cache_dir, *_ = warm_cache
        *_bundle, status = artifacts.setup_worldgen(
            CONFIG.seed,
            CONFIG.world,
            WebConfig(n_sites=6, n_pages=31),
            cache_dir,
        )
        assert status == "miss"


class TestKeying:
    def test_key_covers_seed_and_configs(self):
        base = artifacts.scenario_artifact_key(1, CONFIG.world, CONFIG.web)
        assert artifacts.scenario_artifact_key(2, CONFIG.world, CONFIG.web) != base
        assert (
            artifacts.scenario_artifact_key(
                1, WorldConfig(n_types=6, n_entities=60), CONFIG.web
            )
            != base
        )

    def test_code_version_change_invalidates(self, warm_cache, monkeypatch):
        cache_dir, *_ = warm_cache
        monkeypatch.setattr(artifacts, "_code_version_cache", "deadbeef")
        loaded = artifacts.load_scenario_artifact(
            cache_dir, CONFIG.seed, CONFIG.world, CONFIG.web
        )
        assert loaded is None


class TestCorruptionHandling:
    def load(self, cache_dir, **kwargs):
        return artifacts.load_scenario_artifact(
            cache_dir, CONFIG.seed, CONFIG.world, CONFIG.web, **kwargs
        )

    def artifact_dir(self, cache_dir):
        key = artifacts.scenario_artifact_key(CONFIG.seed, CONFIG.world, CONFIG.web)
        return artifacts.artifact_dir_for(cache_dir, key)

    def test_verified_load_succeeds(self, warm_cache):
        cache_dir, *_ = warm_cache
        assert self.load(cache_dir, verify=True) is not None

    def test_size_drift_misses(self, warm_cache, tmp_path):
        cache_dir, *_ = warm_cache
        clone = tmp_path / "clone"
        clone.mkdir()
        source = self.artifact_dir(cache_dir)
        target = artifacts.artifact_dir_for(
            clone,
            artifacts.scenario_artifact_key(CONFIG.seed, CONFIG.world, CONFIG.web),
        )
        target.mkdir()
        for entry in source.iterdir():
            (target / entry.name).write_bytes(entry.read_bytes())
        payload = target / "payload.bin"
        payload.write_bytes(payload.read_bytes() + b"x")
        assert self.load(clone) is None

    def test_checksum_corruption_detected_by_verify(self, warm_cache, tmp_path):
        cache_dir, *_ = warm_cache
        clone = tmp_path / "clone"
        clone.mkdir()
        source = self.artifact_dir(cache_dir)
        target = artifacts.artifact_dir_for(
            clone,
            artifacts.scenario_artifact_key(CONFIG.seed, CONFIG.world, CONFIG.web),
        )
        target.mkdir()
        for entry in source.iterdir():
            (target / entry.name).write_bytes(entry.read_bytes())
        payload = target / "payload.bin"
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF  # same size, different bytes
        payload.write_bytes(bytes(data))
        assert self.load(clone, verify=True) is None

    def test_missing_meta_misses(self, tmp_path):
        assert self.load(tmp_path / "empty") is None

    def test_wrong_key_in_meta_misses(self, warm_cache, tmp_path):
        cache_dir, *_ = warm_cache
        clone = tmp_path / "clone"
        clone.mkdir()
        source = self.artifact_dir(cache_dir)
        target = artifacts.artifact_dir_for(
            clone,
            artifacts.scenario_artifact_key(CONFIG.seed, CONFIG.world, CONFIG.web),
        )
        target.mkdir()
        for entry in source.iterdir():
            (target / entry.name).write_bytes(entry.read_bytes())
        meta = json.loads((target / "meta.json").read_text())
        meta["key"] = "0" * 64
        (target / "meta.json").write_text(json.dumps(meta))
        assert self.load(clone) is None


class TestDownstreamBitIdentity:
    def test_records_and_gold_match_fresh_build(self, warm_cache):
        from repro.datasets.scenario import build_extraction_pipeline, label_gold

        cache_dir, world, freebase, corpus = warm_cache
        config = CONFIG
        fresh_records = build_extraction_pipeline(config, world).run(
            corpus, backend="serial"
        )

        world2, freebase2, corpus2, status = artifacts.setup_worldgen(
            config.seed, config.world, config.web, cache_dir
        )
        assert status == "hit"
        cached_records = build_extraction_pipeline(config, world2).run(
            corpus2, backend="serial"
        )
        assert cached_records == fresh_records
        assert label_gold(freebase2, cached_records) == label_gold(
            freebase, fresh_records
        )

    def test_build_scenario_uses_the_cache(self, tmp_path):
        from repro.datasets import build_scenario

        cold = build_scenario(CONFIG, use_cache=False, cache_dir=tmp_path)
        warm = build_scenario(CONFIG, use_cache=False, cache_dir=tmp_path)
        assert isinstance(warm.corpus.pages, artifacts.LazyPageList)
        assert warm.records == cold.records
        assert warm.gold == cold.gold
