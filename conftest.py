"""Root pytest configuration: keep the suite collectible without
pytest-benchmark.

``addopts`` (pyproject.toml) pins ``--benchmark-disable`` so explicitly
collected benches run as fast one-shot smoke tests unless
``--benchmark-enable`` is passed.  In an environment without the
pytest-benchmark plugin that flag would be unrecognized and abort every
run at argument parsing — the same die-before-collection failure mode
the packaged test layout exists to prevent.  When the plugin is absent,
register no-op stand-ins for its options and a minimal ``benchmark``
fixture that just calls the target once.
"""

from __future__ import annotations

import importlib.util

import pytest

if importlib.util.find_spec("pytest_benchmark") is None:

    def pytest_addoption(parser):
        group = parser.getgroup("benchmark")
        group.addoption("--benchmark-disable", action="store_true", default=False)
        group.addoption("--benchmark-enable", action="store_true", default=False)

    class _OneShotBenchmark:
        """Runs the benched callable once, without measurement."""

        @staticmethod
        def __call__(target, *args, **kwargs):
            return target(*args, **kwargs)

        @staticmethod
        def pedantic(target, args=(), kwargs=None, **_options):
            return target(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _OneShotBenchmark()
